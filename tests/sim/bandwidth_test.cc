#include "sim/bandwidth.h"

#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(TrafficMeterTest, AccumulatesMessagesAndBytes) {
  TrafficMeter meter;
  meter.RecordMessage(10);
  meter.RecordMessage(30);
  EXPECT_EQ(meter.total().messages, 2);
  EXPECT_EQ(meter.total().bytes, 40);
  EXPECT_DOUBLE_EQ(meter.MeanMessageBytes(), 20.0);
  meter.Reset();
  EXPECT_EQ(meter.total().messages, 0);
  EXPECT_DOUBLE_EQ(meter.MeanMessageBytes(), 0.0);
}

TEST(TrafficMeterTest, StatsCompose) {
  TrafficStats a{2, 100};
  const TrafficStats b{3, 50};
  a += b;
  EXPECT_EQ(a.messages, 5);
  EXPECT_EQ(a.bytes, 150);
}

TEST(TrafficMeterTest, PushSumPushPullCosts2nMessagesPerRound) {
  // Section V: "every push/pull iteration requires a minimum of 2n
  // messages, where n is the number of participating hosts".
  const int n = 500;
  const std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  swarm.RunRound(env, pop, rng);
  EXPECT_EQ(meter.total().messages, 2 * n);
  EXPECT_EQ(meter.total().bytes, 2 * n * kMassMessageBytes);
}

TEST(TrafficMeterTest, PushSumPushCostsNMessagesPerRound) {
  const int n = 500;
  const std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPush);
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  swarm.RunRound(env, pop, rng);
  // Self-messages are not radio traffic: exactly one payload per host.
  EXPECT_EQ(meter.total().messages, n);
}

TEST(TrafficMeterTest, DeadHostsSendNothing) {
  const int n = 100;
  const std::vector<double> values(n, 1.0);
  PushSumRevertSwarm swarm(values,
                           {.lambda = 0.1, .mode = GossipMode::kPushPull});
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  for (HostId id = 10; id < n; ++id) pop.Kill(id);
  Rng rng(3);
  swarm.RunRound(env, pop, rng);
  EXPECT_EQ(meter.total().messages, 2 * 10);
}

TEST(TrafficMeterTest, IsolatedHostSendsNothing) {
  const std::vector<double> values = {1.0};
  PushSumSwarm swarm(values, GossipMode::kPush);
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(1);
  Population pop(1);
  Rng rng(4);
  swarm.RunRound(env, pop, rng);
  EXPECT_EQ(meter.total().messages, 0);
}

TEST(TrafficMeterTest, CsrPayloadMatchesSerializedBytes) {
  const int n = 50;
  const std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(5);
  swarm.RunRound(env, pop, rng);
  EXPECT_EQ(meter.total().messages, 2 * n);
  const int64_t payload = swarm.node(0).SerializedBytes();
  EXPECT_EQ(meter.total().bytes, 2 * n * payload);
  // And SerializedBytes must agree with the actual serialization.
  BufWriter w;
  swarm.node(0).Serialize(&w);
  EXPECT_EQ(static_cast<int64_t>(w.size()), payload);
}

TEST(TrafficMeterTest, CsrOrdersOfMagnitudeHeavierThanPushSum) {
  // The quantitative basis for Invert-Average (Section IV.B).
  const int n = 200;
  const std::vector<double> values(n, 1.0);
  const std::vector<int64_t> ones(n, 1);
  PushSumRevertSwarm psr(values,
                         {.lambda = 0.01, .mode = GossipMode::kPushPull});
  CsrSwarm csr(ones, CsrParams{});
  TrafficMeter psr_meter;
  TrafficMeter csr_meter;
  psr.set_traffic_meter(&psr_meter);
  csr.set_traffic_meter(&csr_meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng1(6);
  Rng rng2(6);
  for (int round = 0; round < 5; ++round) {
    psr.RunRound(env, pop, rng1);
    csr.RunRound(env, pop, rng2);
  }
  EXPECT_GT(csr_meter.total().bytes, 50 * psr_meter.total().bytes);
}

}  // namespace
}  // namespace dynagg
