// ChurnPlan contract tests: the precomputed two-sided membership schedule
// must be a pure function of (params, seed), respect the growth cap and
// the churn window, admit first-time arrivals in ID order, and consume its
// Poisson arrival draw even when the result is clamped — the invariant
// that keeps a tightened cap from shifting every later draw. Also covers
// the partial-alive Population constructor churn plans build on.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/churn.h"
#include "sim/population.h"

namespace dynagg {
namespace {

ChurnParams BaseParams() {
  ChurnParams params;
  params.n = 64;
  params.initial = 32;
  params.arrival_rate = 1.5;
  params.death_prob = 0.02;
  params.rebirth_prob = 0.05;
  params.start_round = 0;
  params.end_round = 40;
  params.max_alive = 64;
  return params;
}

/// Applies every round of `plan` to a fresh partial population and returns
/// the per-round alive counts (the observable trajectory).
std::vector<int> AliveTrajectory(const ChurnPlan& plan,
                                 const ChurnParams& params) {
  Population pop(params.n, params.initial);
  std::vector<int> alive;
  for (int round = 0; round < params.end_round; ++round) {
    plan.Apply(round, &pop, nullptr);
    alive.push_back(pop.num_alive());
  }
  return alive;
}

TEST(ChurnPlanTest, SameSeedReplaysIdentically) {
  const ChurnParams params = BaseParams();
  Rng rng_a(123);
  Rng rng_b(123);
  const ChurnPlan plan_a = ChurnPlan::Build(params, rng_a);
  const ChurnPlan plan_b = ChurnPlan::Build(params, rng_b);
  EXPECT_EQ(AliveTrajectory(plan_a, params), AliveTrajectory(plan_b, params));
  const auto totals_a = plan_a.Totals();
  const auto totals_b = plan_b.Totals();
  EXPECT_EQ(totals_a.kills, totals_b.kills);
  EXPECT_EQ(totals_a.joins, totals_b.joins);
  EXPECT_EQ(totals_a.rebirths, totals_b.rebirths);
  // And the generators ended in the same state.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(ChurnPlanTest, DifferentSeedsDiffer) {
  ChurnParams params = BaseParams();
  params.death_prob = 0.1;  // enough activity that collision is negligible
  Rng rng_a(1);
  Rng rng_b(2);
  const ChurnPlan plan_a = ChurnPlan::Build(params, rng_a);
  const ChurnPlan plan_b = ChurnPlan::Build(params, rng_b);
  EXPECT_NE(AliveTrajectory(plan_a, params), AliveTrajectory(plan_b, params));
}

TEST(ChurnPlanTest, MaxAliveCapsGrowth) {
  ChurnParams params = BaseParams();
  params.arrival_rate = 8;  // heavy arrival pressure against the cap
  params.death_prob = 0.05;
  params.max_alive = 40;
  Rng rng(7);
  const ChurnPlan plan = ChurnPlan::Build(params, rng);
  for (const int alive : AliveTrajectory(plan, params)) {
    EXPECT_LE(alive, params.max_alive);
  }
  EXPECT_GT(plan.Totals().joins, 0);
}

TEST(ChurnPlanTest, NoEventsOutsideTheWindow) {
  ChurnParams params = BaseParams();
  params.start_round = 10;
  params.end_round = 20;
  params.death_prob = 0.5;  // any round inside the window churns for sure
  Rng rng(9);
  const ChurnPlan plan = ChurnPlan::Build(params, rng);
  Population pop(params.n, params.initial);
  for (int round = 0; round < 40; ++round) {
    const auto delta = plan.Apply(round, &pop, nullptr);
    if (round < params.start_round || round >= params.end_round) {
      EXPECT_EQ(delta.kills + delta.joins + delta.rebirths, 0)
          << "event outside churn window at round " << round;
    }
  }
  EXPECT_GT(plan.Totals().kills, 0);
}

TEST(ChurnPlanTest, ArrivalsComeFromTheUnbornPoolInIdOrder) {
  ChurnParams params = BaseParams();
  params.death_prob = 0;
  params.rebirth_prob = 0;
  params.arrival_rate = 2;
  Rng rng(11);
  const ChurnPlan plan = ChurnPlan::Build(params, rng);
  Population pop(params.n, params.initial);
  std::vector<HostId> joined;
  for (int round = 0; round < params.end_round; ++round) {
    plan.Apply(round, &pop, [&](HostId id) { joined.push_back(id); });
  }
  ASSERT_FALSE(joined.empty());
  // First arrival is the first unborn ID, and each arrival is the next one.
  for (size_t k = 0; k < joined.size(); ++k) {
    EXPECT_EQ(joined[k], static_cast<HostId>(params.initial + k));
  }
  // Never more arrivals than the universe holds.
  EXPECT_LE(joined.size(), static_cast<size_t>(params.n - params.initial));
}

TEST(ChurnPlanTest, TotalsMatchAppliedDeltas) {
  const ChurnParams params = BaseParams();
  Rng rng(13);
  const ChurnPlan plan = ChurnPlan::Build(params, rng);
  Population pop(params.n, params.initial);
  ChurnPlan::RoundDelta sum;
  int on_join_calls = 0;
  for (int round = 0; round < params.end_round; ++round) {
    const auto delta =
        plan.Apply(round, &pop, [&](HostId) { ++on_join_calls; });
    sum.kills += delta.kills;
    sum.joins += delta.joins;
    sum.rebirths += delta.rebirths;
  }
  const auto totals = plan.Totals();
  EXPECT_EQ(sum.kills, totals.kills);
  EXPECT_EQ(sum.joins, totals.joins);
  EXPECT_EQ(sum.rebirths, totals.rebirths);
  // on_join fires for arrivals AND rebirths, never for kills.
  EXPECT_EQ(on_join_calls, totals.joins + totals.rebirths);
  EXPECT_FALSE(plan.empty());
}

// The determinism contract's draw-granularity clause: the Poisson arrival
// draw is consumed every churning round even when the growth cap clamps
// the admitted count to zero, so the cap changes which joins happen — not
// the random sequence behind everything after it.
TEST(ChurnPlanTest, CapClampConsumesTheArrivalDraw) {
  ChurnParams open = BaseParams();
  open.death_prob = 0;
  open.rebirth_prob = 0;  // arrivals are the only draws
  ChurnParams capped = open;
  capped.max_alive = capped.initial;  // every arrival clamped away
  Rng rng_open(42);
  Rng rng_capped(42);
  const ChurnPlan plan_open = ChurnPlan::Build(open, rng_open);
  const ChurnPlan plan_capped = ChurnPlan::Build(capped, rng_capped);
  EXPECT_GT(plan_open.Totals().joins, 0);
  EXPECT_EQ(plan_capped.Totals().joins, 0);
  EXPECT_TRUE(plan_capped.empty());
  // Same draws consumed despite the clamp.
  EXPECT_EQ(rng_open.Next(), rng_capped.Next());
}

TEST(ChurnPlanTest, DefaultPlanIsEmpty) {
  const ChurnPlan plan;
  EXPECT_TRUE(plan.empty());
  Population pop(8);
  const auto delta = plan.Apply(0, &pop, nullptr);
  EXPECT_EQ(delta.kills + delta.joins + delta.rebirths, 0);
  EXPECT_EQ(pop.num_alive(), 8);
}

// -------------------------------------------- partial-alive Population ---

TEST(PartialPopulationTest, UnbornHostsStartDead) {
  Population pop(10, 4);
  EXPECT_EQ(pop.size(), 10);
  EXPECT_EQ(pop.num_alive(), 4);
  for (HostId id = 0; id < 4; ++id) EXPECT_TRUE(pop.IsAlive(id));
  for (HostId id = 4; id < 10; ++id) EXPECT_FALSE(pop.IsAlive(id));
}

TEST(PartialPopulationTest, PartialUniverseStartsAlreadyMutated) {
  // version() == 0 promises "never mutated, everyone alive"; a partial
  // universe must not satisfy identity fast paths keyed on that.
  Population partial(10, 4);
  EXPECT_EQ(partial.version(), 1u);
  Population full(10, 10);
  EXPECT_EQ(full.version(), 0u);
}

TEST(PartialPopulationTest, RebirthWithIdReuseBumpsVersionAndFingerprint) {
  Population pop(10, 10);
  pop.Kill(3);
  const uint64_t version = pop.version();
  const uint64_t fingerprint = pop.fingerprint();
  pop.Revive(3);  // rebirth reusing the old ID
  EXPECT_GT(pop.version(), version);
  EXPECT_NE(pop.fingerprint(), fingerprint);
  EXPECT_TRUE(pop.IsAlive(3));
}

TEST(PartialPopulationTest, FirstArrivalBumpsVersionAndFingerprint) {
  Population pop(10, 4);
  const uint64_t version = pop.version();
  const uint64_t fingerprint = pop.fingerprint();
  pop.Revive(7);  // unborn host arrives
  EXPECT_GT(pop.version(), version);
  EXPECT_NE(pop.fingerprint(), fingerprint);
  EXPECT_EQ(pop.num_alive(), 5);
}

}  // namespace
}  // namespace dynagg
