#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, RunAdvancesClock) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(FromSeconds(5), [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, FromSeconds(5));
  EXPECT_EQ(sim.Now(), FromSeconds(5));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(100, [&] {
    times.push_back(sim.Now());
    sim.ScheduleAfter(50, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{100, 150}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.RunUntil(kSimTimeMax), 1);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, RequestStopHaltsLoop) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A later Run resumes with remaining events.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PeriodicFiresUntilFalse) {
  Simulator sim;
  std::vector<SimTime> ticks;
  sim.SchedulePeriodic(FromSeconds(30), FromSeconds(30), [&] {
    ticks.push_back(sim.Now());
    return ticks.size() < 4;
  });
  sim.Run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{FromSeconds(30), FromSeconds(60),
                                         FromSeconds(90), FromSeconds(120)}));
}

TEST(SimulatorTest, PeriodicInterleavesWithOtherEvents) {
  Simulator sim;
  std::vector<int> sequence;
  sim.SchedulePeriodic(10, 10, [&] {
    sequence.push_back(0);
    return sim.Now() < 40;
  });
  sim.ScheduleAt(15, [&] { sequence.push_back(1); });
  sim.ScheduleAt(35, [&] { sequence.push_back(2); });
  sim.Run();
  EXPECT_EQ(sequence, (std::vector<int>{0, 1, 0, 0, 2, 0}));
}

TEST(SimulatorTest, ReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  EXPECT_EQ(sim.Run(), 7);
}

}  // namespace
}  // namespace dynagg
