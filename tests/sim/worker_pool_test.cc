// WorkerPool lifecycle and correctness tests.
//
// The pool is the persistence layer under the round kernel's parallel
// deposit scatter: threads created once per calling (executor worker)
// thread, parked between dispatches, reused across rounds and trials.
// These tests pin the dispatch contract (every task exactly once, task 0
// on the caller), reuse across many dispatches, oversubscription beyond
// the visible-CPU budget, nested use from a pool's own worker threads
// (the executor x intra-round shape), pool destruction at thread exit,
// and the VisibleCpus test override. The CI sanitizer lane runs this
// whole file under ASan/UBSan, so a lifecycle bug (worker outliving its
// pool, double-join, use-after-free on the dispatch context) fails the
// pipeline even when the optimized lane is green.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/worker_pool.h"

namespace dynagg {
namespace {

/// Forces VisibleCpus() for a scope; restores the real value on exit so
/// tests cannot leak an override into each other.
class ScopedVisibleCpus {
 public:
  explicit ScopedVisibleCpus(int n) { WorkerPool::OverrideVisibleCpusForTest(n); }
  ~ScopedVisibleCpus() { WorkerPool::OverrideVisibleCpusForTest(0); }
};

TEST(WorkerPoolTest, RunExecutesEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  std::vector<int> hits(4, 0);
  pool.Run(4, [&](int task) { ++hits[task]; });
  for (int t = 0; t < 4; ++t) EXPECT_EQ(hits[t], 1) << "task " << t;
}

TEST(WorkerPoolTest, TaskZeroRunsOnTheCallingThread) {
  WorkerPool pool(2);
  std::thread::id task0_thread;
  pool.Run(3, [&](int task) {
    if (task == 0) task0_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(task0_thread, std::this_thread::get_id());
}

TEST(WorkerPoolTest, SingleTaskDispatchesInlineWithoutWakingWorkers) {
  WorkerPool pool(4);
  std::thread::id ran_on;
  pool.Run(1, [&](int task) {
    EXPECT_EQ(task, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(WorkerPoolTest, FewerTasksThanWorkersLeavesExtrasParked) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  pool.Run(2, [&](int) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerPoolTest, ReusedAcrossManyDispatchesWithoutDrift) {
  // The round-kernel usage pattern: one pool, thousands of fork/join
  // cycles (every parallel round of every trial). Each dispatch writes a
  // disjoint slice; the running sum catches a lost or duplicated wakeup.
  WorkerPool pool(3);
  std::vector<int64_t> slice(4, 0);
  for (int round = 0; round < 2000; ++round) {
    pool.Run(4, [&](int task) { slice[task] += task + 1; });
  }
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(slice[t], static_cast<int64_t>(2000) * (t + 1)) << "task " << t;
  }
}

TEST(WorkerPoolTest, OversubscribedBeyondVisibleCpusStillCompletes) {
  // More workers than the host has CPUs (this CI VM has one): the pool
  // must still run every task and join — oversubscription is a perf
  // question, never a correctness one.
  WorkerPool pool(8);
  std::vector<int> hits(9, 0);
  for (int round = 0; round < 50; ++round) {
    pool.Run(9, [&](int task) { ++hits[task]; });
  }
  for (int t = 0; t < 9; ++t) EXPECT_EQ(hits[t], 50) << "task " << t;
}

TEST(WorkerPoolTest, CreateDestroyRepeatedlyIsClean) {
  // Executor workers come and go across experiments; construction and
  // shutdown (notify + join of parked threads) must be leak- and
  // race-free. The sanitizer lane is the real assertion here.
  for (int i = 0; i < 20; ++i) {
    WorkerPool pool(2);
    int sum = 0;
    std::mutex mu;
    pool.Run(3, [&](int task) {
      std::lock_guard<std::mutex> lock(mu);
      sum += task;
    });
    EXPECT_EQ(sum, 3);
  }
}

TEST(WorkerPoolTest, DestroyWithoutEverDispatchingJoinsParkedThreads) {
  WorkerPool pool(3);
  // No Run: the destructor must wake and join workers that only ever
  // parked (the trial-dies-before-its-first-parallel-round shape).
}

TEST(WorkerPoolTest, VisibleCpusOverrideSetsAndClears) {
  const int real = WorkerPool::VisibleCpus();
  EXPECT_GE(real, 1);
  {
    ScopedVisibleCpus forced(7);
    EXPECT_EQ(WorkerPool::VisibleCpus(), 7);
  }
  EXPECT_EQ(WorkerPool::VisibleCpus(), real);
  EXPECT_LE(WorkerPool::VisibleCpus(), WorkerPool::HardwareConcurrency());
  EXPECT_LE(WorkerPool::VisibleCpus(), WorkerPool::AffinityCpus());
}

TEST(WorkerPoolTest, ForCallingThreadReturnsSamePoolAndGrowsOnDemand) {
  WorkerPool& small = WorkerPool::ForCallingThread(1);
  EXPECT_GE(small.workers(), 1);
  WorkerPool& again = WorkerPool::ForCallingThread(1);
  EXPECT_EQ(&small, &again);

  WorkerPool& grown = WorkerPool::ForCallingThread(4);
  EXPECT_GE(grown.workers(), 4);
  // Asking for less afterwards must not shrink: the pool serves the
  // largest thread count this thread has ever dispatched.
  WorkerPool& kept = WorkerPool::ForCallingThread(2);
  EXPECT_EQ(&grown, &kept);
  EXPECT_GE(kept.workers(), 4);

  std::vector<int> hits(5, 0);
  kept.Run(5, [&](int task) { ++hits[task]; });
  for (int t = 0; t < 5; ++t) EXPECT_EQ(hits[t], 1);
}

TEST(WorkerPoolTest, PerThreadPoolsDieWithTheirThreads) {
  // Executor trial workers exit when the experiment ends (including
  // mid-experiment on error paths); each one's thread-local pool must
  // shut down with it. Spawn-use-exit several times; ASan flags any
  // worker outliving its pool.
  for (int i = 0; i < 8; ++i) {
    std::atomic<int> ran{0};
    std::thread trial_worker([&] {
      WorkerPool& pool = WorkerPool::ForCallingThread(2);
      for (int round = 0; round < 10; ++round) {
        pool.Run(3, [&](int) { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    trial_worker.join();
    EXPECT_EQ(ran.load(), 30);
  }
}

TEST(WorkerPoolTest, NestedExecutorByIntraRoundShapeDoesNotDeadlock) {
  // The production nesting: executor trial threads (outer parallelism)
  // each drive their own intra-round scatter pool (inner parallelism).
  // Outer threads are plain std::threads as in the executor; each inner
  // dispatch goes through that thread's ForCallingThread pool.
  constexpr int kOuter = 3;
  constexpr int kInnerTasks = 4;
  std::atomic<int> inner_ran{0};
  std::vector<std::thread> outer;
  outer.reserve(kOuter);
  for (int w = 0; w < kOuter; ++w) {
    outer.emplace_back([&] {
      WorkerPool& pool = WorkerPool::ForCallingThread(kInnerTasks - 1);
      for (int round = 0; round < 25; ++round) {
        pool.Run(kInnerTasks, [&](int) {
          inner_ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : outer) t.join();
  EXPECT_EQ(inner_ran.load(), kOuter * 25 * kInnerTasks);
}

TEST(WorkerPoolTest, TasksReceiveDisjointIndices) {
  // Each task records which thread ran it; indices must partition across
  // the caller plus distinct workers with no index handed out twice.
  WorkerPool pool(3);
  std::vector<std::thread::id> ran_by(4);
  pool.Run(4, [&](int task) { ran_by[task] = std::this_thread::get_id(); });
  for (int a = 0; a < 4; ++a) {
    EXPECT_NE(ran_by[a], std::thread::id()) << "task " << a << " never ran";
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_NE(ran_by[a], ran_by[b])
          << "tasks " << a << " and " << b << " shared a thread";
    }
  }
}

}  // namespace
}  // namespace dynagg
