#include "sim/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/population.h"

namespace dynagg {
namespace {

TEST(MetricsTest, TrueAverageAllAlive) {
  const std::vector<double> values = {1, 2, 3, 4};
  Population pop(4);
  EXPECT_DOUBLE_EQ(TrueAverage(values, pop), 2.5);
}

TEST(MetricsTest, TrueAverageSkipsDead) {
  const std::vector<double> values = {10, 20, 30, 40};
  Population pop(4);
  pop.Kill(3);
  EXPECT_DOUBLE_EQ(TrueAverage(values, pop), 20.0);
}

TEST(MetricsTest, TrueAverageEmptyPopulation) {
  const std::vector<double> values = {1.0};
  Population pop(1);
  pop.Kill(0);
  EXPECT_EQ(TrueAverage(values, pop), 0.0);
}

TEST(MetricsTest, TrueSum) {
  const std::vector<double> values = {1, 2, 3};
  Population pop(3);
  EXPECT_DOUBLE_EQ(TrueSum(values, pop), 6.0);
  pop.Kill(1);
  EXPECT_DOUBLE_EQ(TrueSum(values, pop), 4.0);
}

TEST(MetricsTest, RmsDeviationOverAlive) {
  Population pop(3);
  const std::vector<double> estimates = {4, 6, 5};
  const double rms = RmsDeviationOverAlive(
      pop, 5.0, [&](HostId id) { return estimates[id]; });
  EXPECT_DOUBLE_EQ(rms, std::sqrt((1.0 + 1.0 + 0.0) / 3.0));
}

TEST(MetricsTest, RmsDeviationIgnoresDeadEstimates) {
  Population pop(3);
  pop.Kill(2);
  const std::vector<double> estimates = {5, 5, 1000};
  const double rms = RmsDeviationOverAlive(
      pop, 5.0, [&](HostId id) { return estimates[id]; });
  EXPECT_EQ(rms, 0.0);
}

TEST(MetricsTest, RmsDeviationPerHost) {
  Population pop(2);
  const double rms = RmsDeviationPerHost(
      pop, [](HostId id) { return id == 0 ? 10.0 : 20.0; },
      [](HostId id) { return id == 0 ? 13.0 : 16.0; });
  EXPECT_DOUBLE_EQ(rms, std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(MetricsTest, FirstSustainedBelowBasic) {
  EXPECT_EQ(FirstSustainedBelow({5, 4, 3, 0.5, 0.4, 0.3}, 1.0), 3);
}

TEST(MetricsTest, FirstSustainedBelowRequiresSustained) {
  // Dips back above the threshold: only the final crossing counts.
  EXPECT_EQ(FirstSustainedBelow({0.5, 2.0, 0.5, 0.5}, 1.0), 2);
}

TEST(MetricsTest, FirstSustainedBelowNever) {
  EXPECT_EQ(FirstSustainedBelow({3, 2, 1.5}, 1.0), -1);
  EXPECT_EQ(FirstSustainedBelow({}, 1.0), -1);
}

TEST(MetricsTest, FirstSustainedBelowImmediate) {
  EXPECT_EQ(FirstSustainedBelow({0.1, 0.2}, 1.0), 0);
}

}  // namespace
}  // namespace dynagg
