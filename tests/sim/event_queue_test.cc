#include "sim/event_queue.h"

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(EventQueueTest, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.NextTime(), 10);
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.RunNext();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, RunNextReturnsTimestamp) {
  EventQueue q;
  q.Schedule(42, [] {});
  EXPECT_EQ(q.RunNext(), 42);
}

TEST(EventQueueTest, CallbackMayScheduleMore) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.Schedule(1, [&] {
    fired.push_back(1);
    q.Schedule(2, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 2}));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1, [&] { ++fired; });
  q.Schedule(2, [&] { ++fired; });
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, PrioritiesOrderCoincidingTimestamps) {
  // The async driver's invariant at a coinciding tick: deliveries
  // (priority 0) land before the gossip tick (1), and the sampler (2)
  // observes the post-tick state — regardless of insertion order.
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(2); }, 2);
  q.Schedule(10, [&] { order.push_back(0); }, 0);
  q.Schedule(10, [&] { order.push_back(1); }, 1);
  q.Schedule(5, [&] { order.push_back(-1); }, 9);  // time beats priority
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(EventQueueTest, PopOrderIsInvariantUnderInsertionPermutations) {
  // Property test behind the async driver's thread-count determinism: the
  // same event set — heavy (time, priority) collisions included — must
  // pop in one canonical order however it was inserted. Ties that neither
  // time nor priority break follow insertion order, so the canonical key
  // is (time, priority, arrival rank within the equal-key group).
  struct Ev {
    SimTime at;
    int priority;
    int rank;  // arrival rank among events sharing (at, priority)
  };
  std::vector<Ev> events;
  for (int at = 0; at < 4; ++at) {
    for (int priority = 0; priority < 3; ++priority) {
      for (int rank = 0; rank < 3; ++rank) {
        events.push_back(Ev{at, priority, rank});
      }
    }
  }

  auto pop_order = [](const std::vector<Ev>& inserted) {
    EventQueue q;
    std::vector<std::tuple<SimTime, int, int>> order;
    for (const Ev& e : inserted) {
      q.Schedule(e.at, [&order, e] {
        order.emplace_back(e.at, e.priority, e.rank);
      }, e.priority);
    }
    while (!q.empty()) q.RunNext();
    return order;
  };

  const auto canonical = pop_order(events);
  EXPECT_TRUE(std::is_sorted(canonical.begin(), canonical.end()));

  std::mt19937_64 shuffle(7);
  for (int trial = 0; trial < 20; ++trial) {
    // Permute across distinct (time, priority) keys while equal-key
    // events keep their relative order — that order is what defines
    // their rank, so it must survive the permutation.
    std::vector<std::pair<SimTime, int>> keys;
    for (int at = 0; at < 4; ++at) {
      for (int priority = 0; priority < 3; ++priority) {
        keys.emplace_back(at, priority);
      }
    }
    std::shuffle(keys.begin(), keys.end(), shuffle);
    std::vector<Ev> permuted;
    for (const auto& key : keys) {
      for (const Ev& e : events) {
        if (e.at == key.first && e.priority == key.second) {
          permuted.push_back(e);
        }
      }
    }
    EXPECT_EQ(pop_order(permuted), canonical) << "permutation " << trial;
  }
}

TEST(EventQueueTest, SizeTracksPending) {
  EventQueue q;
  q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.RunNext();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace dynagg
