#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(EventQueueTest, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), kSimTimeMax);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.NextTime(), 10);
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.RunNext();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, RunNextReturnsTimestamp) {
  EventQueue q;
  q.Schedule(42, [] {});
  EXPECT_EQ(q.RunNext(), 42);
}

TEST(EventQueueTest, CallbackMayScheduleMore) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.Schedule(1, [&] {
    fired.push_back(1);
    q.Schedule(2, [&] { fired.push_back(2); });
  });
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 2}));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1, [&] { ++fired; });
  q.Schedule(2, [&] { ++fired; });
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, SizeTracksPending) {
  EventQueue q;
  q.Schedule(1, [] {});
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.RunNext();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace dynagg
