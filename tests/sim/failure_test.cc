#include "sim/failure.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(FailurePlanTest, EmptyPlanDoesNothing) {
  FailurePlan plan;
  Population pop(10);
  EXPECT_TRUE(plan.empty());
  plan.Apply(0, &pop);
  EXPECT_EQ(pop.num_alive(), 10);
}

TEST(FailurePlanTest, KillAtScheduledRoundOnly) {
  FailurePlan plan;
  plan.AddKill(5, {1, 2, 3});
  Population pop(10);
  plan.Apply(4, &pop);
  EXPECT_EQ(pop.num_alive(), 10);
  plan.Apply(5, &pop);
  EXPECT_EQ(pop.num_alive(), 7);
  EXPECT_FALSE(pop.IsAlive(1));
  EXPECT_FALSE(pop.IsAlive(2));
  EXPECT_FALSE(pop.IsAlive(3));
  plan.Apply(6, &pop);
  EXPECT_EQ(pop.num_alive(), 7);
}

TEST(FailurePlanTest, ReviveRestoresHosts) {
  FailurePlan plan;
  plan.AddKill(1, {0, 1});
  plan.AddRevive(3, {0});
  Population pop(4);
  plan.Apply(1, &pop);
  EXPECT_EQ(pop.num_alive(), 2);
  plan.Apply(3, &pop);
  EXPECT_EQ(pop.num_alive(), 3);
  EXPECT_TRUE(pop.IsAlive(0));
  EXPECT_FALSE(pop.IsAlive(1));
}

TEST(FailurePlanTest, KillRandomFractionCount) {
  Rng rng(1);
  const FailurePlan plan = FailurePlan::KillRandomFraction(1000, 20, 0.5, rng);
  Population pop(1000);
  plan.Apply(20, &pop);
  EXPECT_EQ(pop.num_alive(), 500);
}

TEST(FailurePlanTest, KillRandomFractionIsUnbiasedOnValues) {
  // Survivor mean should stay near the full-population mean.
  Rng rng(2);
  const int n = 10000;
  std::vector<double> values(n);
  Rng vrng(3);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  const FailurePlan plan = FailurePlan::KillRandomFraction(n, 0, 0.5, rng);
  Population pop(n);
  plan.Apply(0, &pop);
  double sum = 0;
  for (const HostId id : pop.alive_ids()) sum += values[id];
  EXPECT_NEAR(sum / pop.num_alive(), 50.0, 2.0);
}

TEST(FailurePlanTest, KillTopFractionRemovesHighest) {
  const std::vector<double> values = {5, 1, 9, 3, 7, 2, 8, 0, 6, 4};
  const FailurePlan plan = FailurePlan::KillTopFraction(values, 20, 0.5);
  Population pop(10);
  plan.Apply(20, &pop);
  EXPECT_EQ(pop.num_alive(), 5);
  // Hosts with values 5..9 must be dead; 0..4 alive.
  for (HostId id = 0; id < 10; ++id) {
    EXPECT_EQ(pop.IsAlive(id), values[id] < 5.0) << id;
  }
}

TEST(FailurePlanTest, KillTopFractionHalvesUniformAverage) {
  const int n = 10000;
  std::vector<double> values(n);
  Rng rng(4);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  const FailurePlan plan = FailurePlan::KillTopFraction(values, 0, 0.5);
  Population pop(n);
  plan.Apply(0, &pop);
  double sum = 0;
  for (const HostId id : pop.alive_ids()) sum += values[id];
  // U[0,100) loses its top half: expected survivor mean 25.
  EXPECT_NEAR(sum / pop.num_alive(), 25.0, 1.5);
}

TEST(FailurePlanTest, KillTopFractionZeroAndFull) {
  const std::vector<double> values = {1, 2, 3};
  Population pop(3);
  FailurePlan::KillTopFraction(values, 0, 0.0).Apply(0, &pop);
  EXPECT_EQ(pop.num_alive(), 3);
  FailurePlan::KillTopFraction(values, 0, 1.0).Apply(0, &pop);
  EXPECT_EQ(pop.num_alive(), 0);
}

TEST(FailurePlanTest, ChurnKeepsPopulationBounded) {
  Rng rng(5);
  const int n = 500;
  const FailurePlan plan = FailurePlan::Churn(n, 0, 100, 0.02, 0.2, rng);
  Population pop(n);
  for (int round = 0; round < 100; ++round) {
    plan.Apply(round, &pop);
    EXPECT_GE(pop.num_alive(), 0);
    EXPECT_LE(pop.num_alive(), n);
  }
  // Steady state for death 0.02 / return 0.2 is ~ n * (0.2 / 0.22) ~ 0.91n.
  EXPECT_GT(pop.num_alive(), n / 2);
  EXPECT_LT(pop.num_alive(), n);
}

TEST(FailurePlanTest, ChurnIsReplayable) {
  Rng rng_a(6);
  Rng rng_b(6);
  const FailurePlan plan_a = FailurePlan::Churn(100, 0, 50, 0.05, 0.1, rng_a);
  const FailurePlan plan_b = FailurePlan::Churn(100, 0, 50, 0.05, 0.1, rng_b);
  Population pop_a(100);
  Population pop_b(100);
  for (int round = 0; round < 50; ++round) {
    plan_a.Apply(round, &pop_a);
    plan_b.Apply(round, &pop_b);
    ASSERT_EQ(pop_a.num_alive(), pop_b.num_alive()) << round;
  }
  for (HostId id = 0; id < 100; ++id) {
    EXPECT_EQ(pop_a.IsAlive(id), pop_b.IsAlive(id));
  }
}

TEST(FailurePlanTest, MultipleEventsSameRoundCompose) {
  FailurePlan plan;
  plan.AddKill(2, {0});
  plan.AddKill(2, {1});
  plan.AddRevive(2, {0});
  Population pop(3);
  plan.Apply(2, &pop);
  // Kills apply before revives within a round.
  EXPECT_TRUE(pop.IsAlive(0));
  EXPECT_FALSE(pop.IsAlive(1));
}

}  // namespace
}  // namespace dynagg
