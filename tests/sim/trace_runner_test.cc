#include "sim/trace_runner.h"

#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum_revert.h"
#include "common/rng.h"

namespace dynagg {
namespace {

ContactTrace TwoPhaseTrace() {
  ContactTrace trace(3);
  trace.AddContact(0, 1, FromMinutes(0), FromMinutes(30));
  trace.AddContact(1, 2, FromMinutes(20), FromMinutes(60));
  trace.Finalize();
  return trace;
}

TEST(TraceRunnerTest, RunsOneRoundPerPeriod) {
  const ContactTrace trace = TwoPhaseTrace();
  TraceRunner runner(trace, FromSeconds(30));
  std::vector<SimTime> round_times;
  runner.OnRound([&](SimTime t) { round_times.push_back(t); });
  runner.Run();
  // Trace ends at 60 min = 3600 s -> 120 rounds at 30 s.
  EXPECT_EQ(runner.rounds_run(), 120);
  ASSERT_FALSE(round_times.empty());
  EXPECT_EQ(round_times.front(), FromSeconds(30));
  EXPECT_EQ(round_times.back(), FromMinutes(60));
}

TEST(TraceRunnerTest, EnvironmentIsAdvancedBeforeCallbacks) {
  const ContactTrace trace = TwoPhaseTrace();
  TraceRunner runner(trace, FromSeconds(30));
  bool checked_early = false;
  bool checked_late = false;
  runner.OnRound([&](SimTime t) {
    if (t == FromMinutes(10)) {
      // Only the 0-1 contact is live.
      EXPECT_EQ(runner.env().Degree(1), 1);
      checked_early = true;
    }
    if (t == FromMinutes(25)) {
      // Both contacts are live.
      EXPECT_EQ(runner.env().Degree(1), 2);
      checked_late = true;
    }
  });
  runner.Run();
  EXPECT_TRUE(checked_early);
  EXPECT_TRUE(checked_late);
}

TEST(TraceRunnerTest, SamplersFireAtTheirPeriod) {
  const ContactTrace trace = TwoPhaseTrace();
  TraceRunner runner(trace, FromSeconds(30));
  runner.OnRound([](SimTime) {});
  std::vector<SimTime> samples;
  runner.EverySample(FromMinutes(15), [&](SimTime t) {
    samples.push_back(t);
  });
  runner.Run();
  EXPECT_EQ(samples, (std::vector<SimTime>{FromMinutes(15), FromMinutes(30),
                                           FromMinutes(45),
                                           FromMinutes(60)}));
}

TEST(TraceRunnerTest, MultipleSamplersCoexist) {
  const ContactTrace trace = TwoPhaseTrace();
  TraceRunner runner(trace, FromSeconds(30));
  runner.OnRound([](SimTime) {});
  int coarse = 0;
  int fine = 0;
  runner.EverySample(FromMinutes(30), [&](SimTime) { ++coarse; });
  runner.EverySample(FromMinutes(10), [&](SimTime) { ++fine; });
  runner.Run();
  EXPECT_EQ(coarse, 2);
  EXPECT_EQ(fine, 6);
}

TEST(TraceRunnerTest, MatchesManualLoop) {
  // Driving a protocol through TraceRunner must produce exactly the same
  // estimates as the hand-rolled advance/gossip loop with the same seed.
  const ContactTrace trace = TwoPhaseTrace();
  const std::vector<double> values = {10.0, 50.0, 90.0};
  const PsrParams params{.lambda = 0.01, .mode = GossipMode::kPushPull};

  // Manual loop.
  PushSumRevertSwarm manual(values, params);
  TraceEnvironment manual_env(trace);
  Population manual_pop(3);
  Rng manual_rng(42);
  const SimTime period = FromSeconds(30);
  for (SimTime t = period; t <= trace.end_time(); t += period) {
    manual_env.AdvanceTo(t);
    manual.RunRound(manual_env, manual_pop, manual_rng);
  }

  // Runner loop.
  PushSumRevertSwarm driven(values, params);
  TraceRunner runner(trace, period);
  Rng runner_rng(42);
  runner.OnRound([&](SimTime) {
    driven.RunRound(runner.env(), runner.pop(), runner_rng);
  });
  runner.Run();

  for (HostId id = 0; id < 3; ++id) {
    EXPECT_DOUBLE_EQ(manual.Estimate(id), driven.Estimate(id)) << id;
  }
}

TEST(TraceRunnerTest, EmptyTraceRunsNothing) {
  ContactTrace trace(2);
  trace.Finalize();
  TraceRunner runner(trace, FromSeconds(30));
  int rounds = 0;
  runner.OnRound([&](SimTime) { ++rounds; });
  runner.Run();
  EXPECT_EQ(rounds, 0);
}

}  // namespace
}  // namespace dynagg
