#include "sim/population.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dynagg {
namespace {

TEST(PopulationTest, StartsAllAlive) {
  Population pop(10);
  EXPECT_EQ(pop.size(), 10);
  EXPECT_EQ(pop.num_alive(), 10);
  for (HostId id = 0; id < 10; ++id) EXPECT_TRUE(pop.IsAlive(id));
}

TEST(PopulationTest, KillAndRevive) {
  Population pop(5);
  pop.Kill(2);
  EXPECT_FALSE(pop.IsAlive(2));
  EXPECT_EQ(pop.num_alive(), 4);
  pop.Revive(2);
  EXPECT_TRUE(pop.IsAlive(2));
  EXPECT_EQ(pop.num_alive(), 5);
}

TEST(PopulationTest, KillIsIdempotent) {
  Population pop(3);
  pop.Kill(1);
  pop.Kill(1);
  EXPECT_EQ(pop.num_alive(), 2);
}

TEST(PopulationTest, ReviveIsIdempotent) {
  Population pop(3);
  pop.Revive(1);
  EXPECT_EQ(pop.num_alive(), 3);
}

TEST(PopulationTest, AliveIdsMatchesStatus) {
  Population pop(20);
  for (HostId id = 0; id < 20; id += 2) pop.Kill(id);
  const auto& alive = pop.alive_ids();
  EXPECT_EQ(alive.size(), 10u);
  std::set<HostId> alive_set(alive.begin(), alive.end());
  for (HostId id = 0; id < 20; ++id) {
    EXPECT_EQ(pop.IsAlive(id), alive_set.count(id) == 1) << id;
  }
}

TEST(PopulationTest, KillAll) {
  Population pop(4);
  for (HostId id = 0; id < 4; ++id) pop.Kill(id);
  EXPECT_EQ(pop.num_alive(), 0);
  Rng rng(1);
  EXPECT_EQ(pop.SampleAlive(rng), kInvalidHost);
  EXPECT_EQ(pop.SampleAliveExcept(0, rng), kInvalidHost);
}

TEST(PopulationTest, SampleAliveOnlyReturnsAlive) {
  Population pop(50);
  Rng rng(2);
  for (HostId id = 0; id < 50; id += 3) pop.Kill(id);
  for (int i = 0; i < 1000; ++i) {
    const HostId pick = pop.SampleAlive(rng);
    ASSERT_NE(pick, kInvalidHost);
    EXPECT_TRUE(pop.IsAlive(pick));
  }
}

TEST(PopulationTest, SampleAliveExceptExcludes) {
  Population pop(10);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const HostId pick = pop.SampleAliveExcept(4, rng);
    ASSERT_NE(pick, kInvalidHost);
    EXPECT_NE(pick, 4);
  }
}

TEST(PopulationTest, SampleAliveExceptSoleSurvivor) {
  Population pop(3);
  pop.Kill(0);
  pop.Kill(2);
  Rng rng(4);
  EXPECT_EQ(pop.SampleAliveExcept(1, rng), kInvalidHost);
  EXPECT_EQ(pop.SampleAliveExcept(0, rng), 1);
}

TEST(PopulationTest, SamplingIsUniform) {
  Population pop(10);
  pop.Kill(0);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int draws = 90000;
  for (int i = 0; i < draws; ++i) ++counts[pop.SampleAlive(rng)];
  EXPECT_EQ(counts[0], 0);
  for (HostId id = 1; id < 10; ++id) {
    EXPECT_NEAR(counts[id], draws / 9, 400) << id;
  }
}

TEST(PopulationTest, MassKillRevivesCleanly) {
  Population pop(1000);
  Rng rng(6);
  for (HostId id = 0; id < 1000; ++id) {
    if (rng.Bernoulli(0.5)) pop.Kill(id);
  }
  const int alive_after_kill = pop.num_alive();
  for (HostId id = 0; id < 1000; ++id) pop.Revive(id);
  EXPECT_EQ(pop.num_alive(), 1000);
  EXPECT_LT(alive_after_kill, 1000);
  EXPECT_GT(alive_after_kill, 0);
}

TEST(PopulationTest, EmptyPopulation) {
  Population pop(0);
  Rng rng(7);
  EXPECT_EQ(pop.size(), 0);
  EXPECT_EQ(pop.SampleAlive(rng), kInvalidHost);
}

}  // namespace
}  // namespace dynagg
