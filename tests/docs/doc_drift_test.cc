// Doc-drift guard: docs/spec_reference.md must cover everything
// `dynagg_run --list` enumerates — the protocol/environment/driver
// registries and the workload/record-type/network-model/async-key
// catalogs. The test reads the manual straight from the source tree
// (DYNAGG_SOURCE_DIR) and requires each name to appear backticked, so
// registering a new protocol or spec key without documenting it fails CI
// with the missing name in the message.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "net/network_model.h"
#include "scenario/trial.h"
#include "sim/workload.h"

namespace dynagg {
namespace {

std::string ReadDoc(const std::string& relative) {
  const std::string path = std::string(DYNAGG_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

class DocDriftTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = new std::string(ReadDoc("docs/spec_reference.md"));
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  /// The manual must mention the name in code style (`name`), the way
  /// every catalog table renders keys — a prose coincidence ("uniform
  /// distribution") never satisfies the guard.
  static void ExpectDocumented(const std::string& name,
                               const char* catalog) {
    EXPECT_NE(doc_->find("`" + name + "`"), std::string::npos)
        << catalog << " entry '" << name
        << "' is missing from docs/spec_reference.md — document it (type, "
           "default, valid range, driver compatibility)";
  }

  static std::string* doc_;
};

std::string* DocDriftTest::doc_ = nullptr;

TEST_F(DocDriftTest, EveryProtocolIsDocumented) {
  for (const std::string& name : scenario::ProtocolRegistry().Names()) {
    ExpectDocumented(name, "protocol");
  }
}

TEST_F(DocDriftTest, EveryEnvironmentIsDocumented) {
  for (const std::string& name : scenario::EnvironmentRegistry().Names()) {
    ExpectDocumented(name, "environment");
  }
}

TEST_F(DocDriftTest, EveryDriverIsDocumented) {
  for (const std::string& name : scenario::DriverRegistry().Names()) {
    ExpectDocumented(name, "driver");
  }
}

TEST_F(DocDriftTest, EveryWorkloadKindIsDocumented) {
  for (const WorkloadKindInfo& kind : KeyedWorkloadKinds()) {
    ExpectDocumented(kind.name, "workload kind");
  }
}

TEST_F(DocDriftTest, EveryRecordTypeIsDocumented) {
  for (const scenario::RecordTypeInfo& type : scenario::RecordTypeCatalog()) {
    ExpectDocumented(type.name, "record type");
  }
}

TEST_F(DocDriftTest, EveryNetworkModelIsDocumented) {
  for (const net::NetCatalogInfo& model : net::NetworkModelCatalog()) {
    ExpectDocumented(model.name, "network model");
  }
}

TEST_F(DocDriftTest, EveryAsyncSpecKeyIsDocumented) {
  for (const net::NetCatalogInfo& key : net::AsyncSpecKeyCatalog()) {
    ExpectDocumented(key.name, "async driver spec key");
  }
}

// The cross-linked companion documents the reference manual points at
// must exist — a broken link is drift too.
TEST_F(DocDriftTest, CompanionDocsExist) {
  EXPECT_FALSE(ReadDoc("docs/architecture.md").empty());
  EXPECT_FALSE(ReadDoc("docs/determinism.md").empty());
  EXPECT_FALSE(ReadDoc("README.md").empty());
}

}  // namespace
}  // namespace dynagg
