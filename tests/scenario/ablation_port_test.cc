// Parity tests for the eight ablation_* scenario ports. Each test
// replicates the exact code of the retired bench/ablation_*.cc main (same
// RNG streams, same call order, same derived statistics) at reduced scale
// and demands bit-identical values from the scenario engine, pinning the
// engine features the ports rely on: the sweepval* round-stream grammar,
// final_rms / rms_at / recovery_rounds / final_rel_error / gossip_bytes /
// counter_quantiles records, record.relative, workload multiplicities,
// random epoch phases, and the invert-average and extreme-recovery
// protocols.

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/epoch_push_sum.h"
#include "agg/extremes.h"
#include "agg/full_transfer.h"
#include "agg/invert_average.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "scenario/executor.h"
#include "scenario/spec.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"

namespace dynagg {
namespace scenario {
namespace {

// The parity replicas must generate the exact populations the engine does.
std::vector<double> UniformValues(int n, uint64_t seed) {
  return UniformWorkloadValues(n, seed);
}

std::vector<ResultTable> MustRunAll(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  return std::move(tables).value();
}

CsvTable MustRun(const std::string& text, int threads) {
  std::vector<ResultTable> tables = MustRunAll(text, threads);
  EXPECT_EQ(tables.size(), 1u);
  return std::move(tables[0].table);
}

double RmsOfSwarmEstimate(const Population& pop, double truth,
                          const std::function<double(HostId)>& estimate) {
  return RmsDeviationOverAlive(pop, truth, estimate);
}

// --------------------------------------- parity: adaptive reversion ---

TEST(AblationPortTest, AdaptiveLambdaMatchesLegacyLoop) {
  const int n = 1500;
  const int rounds = 60;
  const uint64_t seed = 20090409;
  const std::vector<double> lambdas = {0.01, 0.25};

  // Hand-rolled replica of the retired bench/ablation_adaptive_lambda.cc.
  const std::vector<double> values = UniformValues(n, seed);
  for (const bool adaptive : {false, true}) {
    std::vector<std::vector<double>> expected;  // floor, recovery per lambda
    for (const double lambda : lambdas) {
      PushSumRevertSwarm swarm(
          values,
          {.lambda = lambda,
           .mode = GossipMode::kPush,
           .revert = adaptive ? RevertMode::kAdaptive : RevertMode::kFixed});
      UniformEnvironment env(n);
      Population pop(n);
      Rng rng(DeriveSeed(seed, static_cast<uint64_t>(lambda * 1e4) +
                                   (adaptive ? 1 : 0)));
      const FailurePlan failures =
          FailurePlan::KillTopFraction(values, 20, 0.5);
      std::vector<double> series;
      RunRounds(swarm, env, pop, failures, rounds, rng, [&](int) {
        series.push_back(RmsOfSwarmEstimate(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      });
      const double floor = series.back();
      const std::vector<double> post(series.begin() + 20, series.end());
      const int rec = FirstSustainedBelow(post, 1.5 * floor + 0.25);
      expected.push_back({floor, static_cast<double>(rec)});
    }

    const CsvTable table = MustRun(
        std::string("name = adaptive_lambda_small\n"
                    "protocol = push-sum-revert\n"
                    "protocol.mode = push\n"
                    "hosts = 1500\n"
                    "rounds = 60\n"
                    "seed = 20090409\n"
                    "sweep = protocol.lambda: 0.01, 0.25\n"
                    "failure.kind = kill_top_fraction\n"
                    "failure.round = 20\n"
                    "failure.fraction = 0.5\n"
                    "record = final_rms, recovery_rounds(rms)\n"
                    "record.recovery_from = 20\n"
                    "record.recovery_mult = 1.5\n"
                    "record.recovery_add = 0.25\n") +
            (adaptive ? "protocol.revert = adaptive\n"
                        "seeds.round_stream = sweepval*10000+1\n"
                      : "protocol.revert = fixed\n"
                        "seeds.round_stream = sweepval*10000\n"),
        2);
    ASSERT_EQ(table.columns().size(), 3u);
    EXPECT_EQ(table.columns()[1], "final_rms");
    EXPECT_EQ(table.columns()[2], "recovery_rounds");
    ASSERT_EQ(table.num_rows(), 2);
    for (int64_t r = 0; r < 2; ++r) {
      EXPECT_EQ(table.row(r)[0], lambdas[r]);
      EXPECT_EQ(table.row(r)[1], expected[r][0])
          << "adaptive=" << adaptive << " row " << r;
      EXPECT_EQ(table.row(r)[2], expected[r][1])
          << "adaptive=" << adaptive << " row " << r;
    }
  }
}

// ------------------------------------------------- parity: CSR cutoff ---

TEST(AblationPortTest, CutoffMatchesLegacyLoop) {
  const int n = 1200;
  const int rounds = 50;
  const uint64_t seed = 20090410;
  const std::vector<double> bases = {4.0, 7.0};

  // Hand-rolled replica of the retired bench/ablation_cutoff.cc.
  std::vector<std::vector<double>> expected;  // pre, recovery, post
  const std::vector<int64_t> ones(n, 1);
  for (const double base : bases) {
    CsrParams params;
    params.cutoff_base = base;
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(base * 10)));
    Rng fail_rng(DeriveSeed(seed, 999));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, 25, 0.5, fail_rng);
    double pre_error = 0.0;
    std::vector<double> post_series;
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = pop.num_alive();
      const double rms = RmsOfSwarmEstimate(
          pop, truth, [&](HostId id) { return swarm.EstimateCount(id); });
      if (round == 24) pre_error = rms / truth;
      if (round >= 25) post_series.push_back(rms / truth);
    });
    const double post_error = post_series.back();
    const int rec =
        FirstSustainedBelow(post_series, std::max(0.25, 2.0 * post_error));
    expected.push_back(
        {pre_error, static_cast<double>(rec), post_error});
  }

  const CsvTable table = MustRun(
      "name = cutoff_small\n"
      "protocol = count-sketch-reset\n"
      "hosts = 1200\n"
      "rounds = 50\n"
      "seed = 20090410\n"
      "sweep = protocol.cutoff_base: 4, 7\n"
      "seeds.round_stream = sweepval*10\n"
      "seeds.failure_stream = 999\n"
      "failure.kind = kill_random_fraction\n"
      "failure.round = 25\n"
      "failure.fraction = 0.5\n"
      "record = rms_at(25), final_rms, recovery_rounds(rms)\n"
      "record.relative = true\n"
      "record.recovery_from = 25\n"
      "record.recovery_mult = 2\n"
      "record.recovery_min = 0.25\n",
      2);
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[1], "final_rms");
  EXPECT_EQ(table.columns()[2], "rms_at_25");
  EXPECT_EQ(table.columns()[3], "recovery_rounds");
  ASSERT_EQ(table.num_rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(table.row(r)[0], bases[r]);
    EXPECT_EQ(table.row(r)[2], expected[r][0]) << "row " << r;
    EXPECT_EQ(table.row(r)[3], expected[r][1]) << "row " << r;
    EXPECT_EQ(table.row(r)[1], expected[r][2]) << "row " << r;
  }
}

// ----------------------------------------------- parity: epoch resets ---

// Replica of the retired bench/ablation_epoch.cc SteadyError().
template <typename Swarm>
double LegacySteadyError(Swarm& swarm, const std::vector<double>& values,
                         int n, int rounds, uint64_t seed) {
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 3));
  const FailurePlan failures =
      FailurePlan::KillTopFraction(values, rounds / 2, 0.5);
  RunningStat tail;
  RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
    if (round < rounds / 2 + 10) return;
    tail.Add(RmsOfSwarmEstimate(
        pop, TrueAverage(values, pop),
        [&](HostId id) { return swarm.Estimate(id); }));
  });
  return tail.mean();
}

TEST(AblationPortTest, EpochMatchesLegacyLoop) {
  const int n = 800;
  const int rounds = 60;
  const uint64_t seed = 20090413;
  const std::vector<double> epoch_lengths = {4.0, 16.0};
  const std::vector<double> values = UniformValues(n, seed);

  const std::string shared =
      "hosts = 800\n"
      "rounds = 60\n"
      "seed = 20090413\n"
      "seeds.round_stream = 3\n"
      "failure.kind = kill_top_fraction\n"
      "failure.round = 30\n"
      "failure.fraction = 0.5\n"
      "record = rms_tail_mean\n"
      "record.from = 40\n";

  for (const bool skewed : {false, true}) {
    std::vector<double> expected;
    for (const double epoch_length : epoch_lengths) {
      std::vector<int> phases(n, 0);
      if (skewed) {
        Rng prng(DeriveSeed(seed, 4));
        for (auto& p : phases) {
          p = static_cast<int>(
              prng.UniformInt(static_cast<uint64_t>(epoch_length)));
        }
      }
      EpochPushSumSwarm swarm(
          values, {.epoch_length = static_cast<int>(epoch_length)}, phases);
      expected.push_back(LegacySteadyError(swarm, values, n, rounds, seed));
    }
    const CsvTable table = MustRun(
        std::string("name = epoch_small\nprotocol = epoch-push-sum\n") +
            shared + "sweep = protocol.epoch_length: 4, 16\n" +
            (skewed ? "protocol.random_phases = true\n" : ""),
        2);
    ASSERT_EQ(table.num_rows(), 2);
    for (int64_t r = 0; r < 2; ++r) {
      EXPECT_EQ(table.row(r)[0], epoch_lengths[r]);
      EXPECT_EQ(table.row(r)[1], expected[r])
          << "skewed=" << skewed << " row " << r;
    }
  }

  // The Push-Sum-Revert reference points of the legacy table.
  std::vector<double> expected_psr;
  for (const double lambda : {0.01, 0.1}) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    expected_psr.push_back(LegacySteadyError(swarm, values, n, rounds, seed));
  }
  const CsvTable psr = MustRun(
      std::string("name = epoch_psr_small\nprotocol = push-sum-revert\n") +
          shared + "sweep = protocol.lambda: 0.01, 0.1\n",
      2);
  ASSERT_EQ(psr.num_rows(), 2);
  EXPECT_EQ(psr.row(0)[1], expected_psr[0]);
  EXPECT_EQ(psr.row(1)[1], expected_psr[1]);
}

// ------------------------------------------- parity: extreme cutoff ---

TEST(AblationPortTest, ExtremesMatchesLegacyLoop) {
  const int n = 1000;
  const uint64_t seed = 20090417;
  const std::vector<double> cutoffs = {0.0, 8.0, 16.0};

  // Hand-rolled replica of the retired bench/ablation_extremes.cc.
  std::vector<std::vector<double>> expected;  // correct, flicker, recover
  std::vector<double> values = UniformValues(n, seed);
  values[0] = 1000.0;
  const double runner_up = 999.0;
  values[1] = runner_up;
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  for (const double cutoff : cutoffs) {
    ExtremeParams params;
    params.cutoff = static_cast<int>(cutoff);
    DynamicExtremeSwarm swarm(values, keys, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(cutoff)));
    int correct = 0;
    int flickers = 0;
    int samples = 0;
    for (int round = 0; round < 40; ++round) {
      swarm.RunRound(env, pop, rng);
      if (round < 15) continue;
      for (HostId id = 0; id < n; id += 97) {
        ++samples;
        if (swarm.Estimate(id) == 1000.0) {
          ++correct;
        } else {
          ++flickers;
        }
      }
    }
    pop.Kill(0);
    int recover = -1;
    for (int round = 0; round < 100; ++round) {
      swarm.RunRound(env, pop, rng);
      int holding = 0;
      for (const HostId id : pop.alive_ids()) {
        if (swarm.Estimate(id) == runner_up) ++holding;
      }
      if (holding >= pop.num_alive() * 95 / 100) {
        recover = round + 1;
        break;
      }
    }
    expected.push_back({100.0 * correct / samples,
                        100.0 * flickers / samples,
                        static_cast<double>(recover)});
  }

  const CsvTable table = MustRun(
      "name = extremes_small\n"
      "protocol = extreme-recovery\n"
      "hosts = 1000\n"
      "seed = 20090417\n"
      "sweep = protocol.cutoff: 0, 8, 16\n"
      "seeds.round_stream = sweepval\n",
      2);
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[1], "steady_correct_pct");
  EXPECT_EQ(table.columns()[2], "flicker_pct");
  EXPECT_EQ(table.columns()[3], "rounds_to_recover");
  ASSERT_EQ(table.num_rows(), 3);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(table.row(r)[0], cutoffs[r]);
    EXPECT_EQ(table.row(r)[1], expected[r][0]) << "row " << r;
    EXPECT_EQ(table.row(r)[2], expected[r][1]) << "row " << r;
    EXPECT_EQ(table.row(r)[3], expected[r][2]) << "row " << r;
  }
}

// --------------------------------------- parity: full-transfer knobs ---

TEST(AblationPortTest, FullTransferMatchesLegacyLoop) {
  const int n = 1200;
  const int rounds = 60;
  const uint64_t seed = 20090408;
  const std::vector<double> parcel_sweep = {1.0, 4.0};
  const std::vector<double> window_sweep = {3.0, 6.0};

  // Hand-rolled replica of the retired bench/ablation_full_transfer.cc.
  const std::vector<double> values = UniformValues(n, seed);
  std::vector<std::vector<double>> expected;  // floor, recovery per cell
  for (const double parcels : parcel_sweep) {
    for (const double window : window_sweep) {
      FullTransferSwarm swarm(
          values, {.lambda = 0.1,
                   .parcels = static_cast<int>(parcels),
                   .window = static_cast<int>(window)});
      UniformEnvironment env(n);
      Population pop(n);
      Rng rng(DeriveSeed(seed, static_cast<uint64_t>(parcels) * 100 +
                                   static_cast<uint64_t>(window)));
      const FailurePlan failures =
          FailurePlan::KillTopFraction(values, 20, 0.5);
      std::vector<double> series;
      RunRounds(swarm, env, pop, failures, rounds, rng, [&](int) {
        series.push_back(RmsOfSwarmEstimate(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      });
      const double floor = series.back();
      const std::vector<double> post(series.begin() + 20, series.end());
      const int rec = FirstSustainedBelow(post, 2.0 * floor + 0.25);
      expected.push_back({floor, static_cast<double>(rec)});
    }
  }

  const CsvTable table = MustRun(
      "name = full_transfer_small\n"
      "protocol = full-transfer\n"
      "protocol.lambda = 0.1\n"
      "hosts = 1200\n"
      "rounds = 60\n"
      "seed = 20090408\n"
      "sweep = protocol.parcels: 1, 4\n"
      "sweep2 = protocol.window: 3, 6\n"
      "seeds.round_stream = sweepval*100+sweep2val\n"
      "failure.kind = kill_top_fraction\n"
      "failure.round = 20\n"
      "failure.fraction = 0.5\n"
      "record = final_rms, recovery_rounds(rms)\n"
      "record.recovery_from = 20\n"
      "record.recovery_mult = 2\n"
      "record.recovery_add = 0.25\n",
      2);
  ASSERT_EQ(table.columns().size(), 4u);
  ASSERT_EQ(table.num_rows(), 4);
  for (int64_t r = 0; r < 4; ++r) {
    // Sweep-major, sweep2 inner — the legacy loop's nesting order.
    EXPECT_EQ(table.row(r)[0], parcel_sweep[r / 2]);
    EXPECT_EQ(table.row(r)[1], window_sweep[r % 2]);
    EXPECT_EQ(table.row(r)[2], expected[r][0]) << "row " << r;
    EXPECT_EQ(table.row(r)[3], expected[r][1]) << "row " << r;
  }
}

// -------------------------------------- parity: invert-average sums ---

TEST(AblationPortTest, InvertAverageMatchesLegacyLoop) {
  const int n = 800;
  const int rounds = 30;
  const uint64_t seed = 20090415;
  const std::vector<double> attr_sweep = {1.0, 4.0};

  // Hand-rolled replica of the retired bench/ablation_invert_average.cc.
  const std::vector<double> values = UniformValues(n, seed);
  std::vector<double> mi_expected;  // relative error per attribute count
  std::vector<double> ia_expected;
  for (const double attributes : attr_sweep) {
    std::vector<int64_t> mults(n);
    for (int i = 0; i < n; ++i) {
      mults[i] = static_cast<int64_t>(values[i] + 0.5);
    }
    CsrParams mi_params;
    CsrSwarm mi(mults, mi_params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(attributes)));
    for (int round = 0; round < rounds; ++round) mi.RunRound(env, pop, rng);
    double truth = 0.0;
    for (int i = 0; i < n; ++i) truth += static_cast<double>(mults[i]);
    mi_expected.push_back(std::abs(mi.EstimateCount(0) - truth) / truth);

    InvertAverageParams ia_params;
    ia_params.psr.lambda = 0.01;
    InvertAverageSwarm ia(values, ia_params);
    Population pop2(n);
    Rng rng2(DeriveSeed(seed, 100 + static_cast<uint64_t>(attributes)));
    for (int round = 0; round < rounds; ++round) ia.RunRound(env, pop2, rng2);
    double true_sum = 0.0;
    for (const double v : values) true_sum += v;
    ia_expected.push_back(std::abs(ia.EstimateSum(0) - true_sum) / true_sum);
  }

  const std::string shared =
      "hosts = 800\n"
      "rounds = 30\n"
      "seed = 20090415\n"
      "sweep = protocol.attributes: 1, 4\n"
      "record = final_rel_error(0), gossip_bytes\n";
  const CsvTable mi_table = MustRun(
      std::string("name = mi_small\nprotocol = count-sketch-reset\n"
                  "protocol.multiplicity = workload\n"
                  "seeds.round_stream = sweepval\n") +
          shared,
      2);
  const CsvTable ia_table = MustRun(
      std::string("name = ia_small\nprotocol = invert-average\n"
                  "protocol.lambda = 0.01\n"
                  "seeds.round_stream = sweepval+100\n") +
          shared,
      2);
  ASSERT_EQ(mi_table.columns().size(), 3u);
  EXPECT_EQ(mi_table.columns()[1], "final_rel_error_0");
  EXPECT_EQ(mi_table.columns()[2], "gossip_bytes");
  ASSERT_EQ(mi_table.num_rows(), 2);
  ASSERT_EQ(ia_table.num_rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    const double attributes = attr_sweep[r];
    EXPECT_EQ(mi_table.row(r)[1], mi_expected[r]) << "row " << r;
    EXPECT_EQ(ia_table.row(r)[1], ia_expected[r]) << "row " << r;
    // The legacy analytic byte model: one value-range sketch per attribute
    // vs one shared sketch plus two doubles of Push-Sum per attribute.
    const double csr_bytes = 2.0 * (64.0 * 24.0 + 8.0);
    EXPECT_EQ(mi_table.row(r)[2], attributes * csr_bytes) << "row " << r;
    EXPECT_EQ(ia_table.row(r)[2],
              csr_bytes + attributes * 2.0 * (2.0 * sizeof(double)))
        << "row " << r;
  }
}

// ------------------------------------------- parity: push vs pushpull ---

TEST(AblationPortTest, PushPullMatchesLegacyLoop) {
  const int n = 800;
  const uint64_t seed = 20090411;

  // Hand-rolled replicas of the retired bench/ablation_pushpull.cc.
  const std::vector<double> values = UniformValues(n, seed);
  const auto rounds_to_converge = [&](GossipMode mode) {
    PushSumSwarm swarm(values, mode);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    const double truth = TrueAverage(values, pop);
    for (int round = 0; round < 200; ++round) {
      swarm.RunRound(env, pop, rng);
      const double rms = RmsOfSwarmEstimate(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      if (rms < 1.0) return round + 1;
    }
    return -1;
  };
  const auto rounds_to_recover = [&](GossipMode mode) {
    PushSumRevertSwarm swarm(values, {.lambda = 0.1, .mode = mode});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillTopFraction(values, 20, 0.5);
    std::vector<double> post;
    RunRounds(swarm, env, pop, failures, 80, rng, [&](int round) {
      if (round < 20) return;
      post.push_back(RmsOfSwarmEstimate(
          pop, TrueAverage(values, pop),
          [&](HostId id) { return swarm.Estimate(id); }));
    });
    return FirstSustainedBelow(post, 1.5 * post.back() + 0.25);
  };

  for (const bool pushpull : {false, true}) {
    const GossipMode mode =
        pushpull ? GossipMode::kPushPull : GossipMode::kPush;
    const std::string mode_key =
        pushpull ? "protocol.mode = pushpull\n" : "protocol.mode = push\n";
    const CsvTable converge = MustRun(
        std::string("name = pp_converge_small\nprotocol = push-sum\n") +
            mode_key +
            "hosts = 800\n"
            "rounds = 200\n"
            "seed = 20090411\n"
            "seeds.round_stream = 1\n"
            "record = rounds_to_converge\n"
            "record.threshold = 1.0\n",
        1);
    ASSERT_EQ(converge.num_rows(), 1);
    EXPECT_EQ(converge.row(0)[0],
              static_cast<double>(rounds_to_converge(mode)))
        << "pushpull=" << pushpull;

    const CsvTable recover = MustRun(
        std::string("name = pp_recover_small\nprotocol = push-sum-revert\n"
                    "protocol.lambda = 0.1\n") +
            mode_key +
            "hosts = 800\n"
            "rounds = 80\n"
            "seed = 20090411\n"
            "seeds.round_stream = 2\n"
            "failure.kind = kill_top_fraction\n"
            "failure.round = 20\n"
            "failure.fraction = 0.5\n"
            "record = recovery_rounds(rms)\n"
            "record.recovery_from = 20\n"
            "record.recovery_mult = 1.5\n"
            "record.recovery_add = 0.25\n",
        1);
    ASSERT_EQ(recover.num_rows(), 1);
    EXPECT_EQ(recover.row(0)[0],
              static_cast<double>(rounds_to_recover(mode)))
        << "pushpull=" << pushpull;
  }
}

// --------------------------------------- parity: spatial propagation ---

// Replica of the retired bench/ablation_spatial.cc CounterQuantiles().
void LegacyCounterQuantiles(const CsrSwarm& swarm, int n,
                            std::vector<std::vector<double>>* rows) {
  const int levels = swarm.params().levels;
  for (int k = 0; k < levels; ++k) {
    Histogram hist(0, 64, 64);
    int64_t finite = 0;
    for (HostId id = 0; id < n; ++id) {
      const CountSketchResetNode& node = swarm.node(id);
      for (int b = 0; b < swarm.params().bins; ++b) {
        const uint8_t c = node.counter(b, k);
        if (c == kCsrInfinity) continue;
        hist.Add(c);
        ++finite;
      }
    }
    if (finite < n / 50 + 1) continue;
    rows->push_back({static_cast<double>(k), hist.Quantile(0.5),
                     hist.Quantile(0.95), hist.Quantile(0.999)});
  }
}

TEST(AblationPortTest, SpatialMatchesLegacyLoop) {
  const int side = 20;
  const int n = side * side;
  const int rounds = 60;
  const uint64_t seed = 20090412;

  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  params.cutoff_enabled = false;
  std::vector<std::vector<double>> uniform_rows;
  {
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    for (int round = 0; round < rounds; ++round) {
      swarm.RunRound(env, pop, rng);
    }
    LegacyCounterQuantiles(swarm, n, &uniform_rows);
  }
  std::vector<std::vector<double>> spatial_rows;
  {
    CsrSwarm swarm(ones, params);
    SpatialGridEnvironment env(side, side);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 2));
    for (int round = 0; round < rounds; ++round) {
      swarm.RunRound(env, pop, rng);
    }
    LegacyCounterQuantiles(swarm, n, &spatial_rows);
  }
  ASSERT_FALSE(uniform_rows.empty());
  ASSERT_FALSE(spatial_rows.empty());

  const std::string shared =
      "protocol = count-sketch-reset\n"
      "protocol.cutoff_enabled = false\n"
      "hosts = 400\n"
      "rounds = 60\n"
      "seed = 20090412\n"
      "record = counter_quantiles(0.5, 0.95, 0.999)\n";
  const CsvTable uniform_table = MustRun(
      std::string("name = spatial_u_small\nenvironment = uniform\n"
                  "seeds.round_stream = 1\n") +
          shared,
      1);
  const CsvTable spatial_table = MustRun(
      std::string("name = spatial_g_small\nenvironment = spatial\n"
                  "env.width = 20\nenv.height = 20\n"
                  "seeds.round_stream = 2\n") +
          shared,
      1);
  for (const bool is_spatial : {false, true}) {
    const CsvTable& table = is_spatial ? spatial_table : uniform_table;
    const std::vector<std::vector<double>>& rows =
        is_spatial ? spatial_rows : uniform_rows;
    ASSERT_EQ(table.columns().size(), 4u);
    EXPECT_EQ(table.columns()[0], "bit");
    EXPECT_EQ(table.columns()[1], "counter_p50");
    EXPECT_EQ(table.columns()[2], "counter_p95");
    EXPECT_EQ(table.columns()[3], "counter_p99.9");
    ASSERT_EQ(table.num_rows(), static_cast<int64_t>(rows.size()));
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      for (size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(table.row(r)[c], rows[r][c])
            << "spatial=" << is_spatial << " row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
