// Port tests for this PR's retired / newly scenario-reachable workloads:
//
//   - fm-accuracy: the tab_sketch_error bench main's Monte-Carlo loop,
//     replicated verbatim, must match the scenario port bit-identically
//     (same seed convention, same statistics).
//   - crawdad: the external-contact-table environment must validate under
//     --dry-run (without touching the file), parse a CRAWDAD table at
//     execution time, run under both drivers, and fail loudly on missing
//     or corrupt files.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/fm_sketch.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

Result<std::vector<ResultTable>> RunScenario(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return RunExperiment((*specs)[0], threads);
}

// ----------------------------------------- parity: tab_sketch_error ---

TEST(PortParityTest, FmAccuracyMatchesLegacyTabSketchError) {
  const int samples = 40;
  const int count = 2000;
  const uint64_t seed = 20090407;
  const std::vector<int> bucket_sweep = {8, 32, 64};

  // Hand-rolled replica of the retired bench/tab_sketch_error.cc Run().
  std::vector<std::vector<double>> expected;  // per bucket count: 3 stats
  for (const int buckets : bucket_sweep) {
    RunningStat rel_error;
    RunningStat signed_error;
    for (int trial = 0; trial < samples; ++trial) {
      FmSketch sketch(buckets, 32);
      const uint64_t trial_seed = DeriveSeed(seed, trial * 1000 + buckets);
      for (int i = 0; i < count; ++i) {
        sketch.InsertObject(HashCombine(trial_seed, i), trial_seed);
      }
      const double rel = (sketch.EstimateCount() - count) / count;
      rel_error.Add(std::abs(rel));
      signed_error.Add(rel);
    }
    expected.push_back({rel_error.mean(),
                        std::sqrt(rel_error.mean() * rel_error.mean() +
                                  rel_error.variance()),
                        signed_error.mean()});
  }

  const auto tables = RunScenario(
      "name = tab_sketch_error_small\n"
      "protocol = fm-accuracy\n"
      "seed = 20090407\n"
      "protocol.samples = 40\n"
      "protocol.count = 2000\n"
      "sweep = protocol.buckets: 8, 32, 64\n",
      1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[0], "buckets");
  EXPECT_EQ(table.columns()[1], "mean_rel_error");
  EXPECT_EQ(table.columns()[2], "rms_rel_error");
  EXPECT_EQ(table.columns()[3], "bias");
  ASSERT_EQ(table.num_rows(), 3);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(table.row(r)[0], bucket_sweep[r]);
    // Bit-identical: same draws, same accumulators, same divisions.
    EXPECT_EQ(table.row(r)[1], expected[r][0]) << "row " << r;
    EXPECT_EQ(table.row(r)[2], expected[r][1]) << "row " << r;
    EXPECT_EQ(table.row(r)[3], expected[r][2]) << "row " << r;
  }
}

TEST(PortParityTest, FmAccuracyValidatesParameters) {
  EXPECT_FALSE(RunScenario("protocol = fm-accuracy\nprotocol.samples = 0\n", 1).ok());
  EXPECT_FALSE(
      RunScenario("protocol = fm-accuracy\nprotocol.bukets = 64\n", 1).ok());
  EXPECT_FALSE(
      RunScenario("protocol = fm-accuracy\nrecord = bandwidth\n", 1).ok());
}

// --------------------------------------------------------- crawdad ---

class CrawdadScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/crawdad_fixture.contacts";
    std::ofstream out(path_);
    // 4 devices (raw ids non-dense, remapped in order of appearance),
    // two contact phases over 40 simulated minutes.
    out << "# synthetic fixture\n"
        << "10 20 0 600\n"
        << "30 40 0 600\n"
        << "10 30 900 1500\n"
        << "20 40 900 1500\n"
        << "10 20 1800 2400\n";
  }

  std::string Spec(const std::string& extra) const {
    return "name = crawdad_test\n"
           "environment = crawdad\n"
           "env.trace_file = " +
           path_ + "\n" + extra;
  }

  std::string path_;
};

TEST_F(CrawdadScenarioTest, DryRunValidatesWithoutReadingFile) {
  // A path that does not exist: --dry-run (ValidateExperiment) must still
  // pass, because the trace is only opened at execution time.
  const auto specs = ParseScenarioFile(
      "name = ghost\n"
      "environment = crawdad\n"
      "env.trace_file = /nonexistent/trace.contacts\n"
      "driver = trace\n"
      "protocol = push-sum-revert\n"
      "record = rms, avg_group_size\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_TRUE(ValidateExperiment((*specs)[0]).ok());
  // ...but execution fails loudly.
  const auto result = RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("trace_file"), std::string::npos);
}

TEST_F(CrawdadScenarioTest, RunsUnderTraceDriver) {
  const auto tables = RunScenario(Spec("driver = trace\n"
                               "protocol = push-sum-revert\n"
                               "gossip_period = 30\n"
                               "sample_period = 300\n"
                               "record = rms, avg_group_size\n"),
                          1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.columns().size(), 3u);
  EXPECT_EQ(table.columns()[0], "hour");
  EXPECT_EQ(table.columns()[1], "rms");
  EXPECT_EQ(table.columns()[2], "avg_group_size");
  // 2400s of trace, hourly-fraction samples every 300s.
  EXPECT_GE(table.num_rows(), 7);
}

TEST_F(CrawdadScenarioTest, RunsUnderRoundsDriverWithAdvancePeriod) {
  const auto tables = RunScenario(Spec("protocol = push-sum-revert\n"
                               "env.gossip_seconds = 60\n"
                               "rounds = 30\n"
                               "record = rms\n"),
                          1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  const CsvTable& table = (*tables)[0].table;
  EXPECT_EQ(table.num_rows(), 30);
}

TEST_F(CrawdadScenarioTest, ThreadCountDeterminism) {
  const std::string text = Spec(
      "driver = trace\n"
      "protocol = push-sum-revert\n"
      "sample_period = 300\n"
      "trials = 3\n"
      "record = rms\n");
  const auto one = RunScenario(text, 1);
  const auto four = RunScenario(text, 4);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(four.ok());
  const auto csv1 = RenderTables(*one, "crawdad_test", "csv");
  const auto csv4 = RenderTables(*four, "crawdad_test", "csv");
  ASSERT_TRUE(csv1.ok());
  ASSERT_TRUE(csv4.ok());
  EXPECT_EQ(*csv1, *csv4);
}

TEST_F(CrawdadScenarioTest, RejectsCorruptTables) {
  const std::string bad = ::testing::TempDir() + "/bad.contacts";
  {
    std::ofstream out(bad);
    out << "1 1 0 600\n";  // self-contact
  }
  const auto result = RunScenario(
      "environment = crawdad\n"
      "env.trace_file = " +
          bad +
          "\n"
          "protocol = push-sum-revert\n"
          "rounds = 5\n",
      1);
  EXPECT_FALSE(result.ok());
}

TEST_F(CrawdadScenarioTest, RejectsUnknownEnvKeysAndBadValues) {
  EXPECT_FALSE(RunScenario(Spec("protocol = push-sum-revert\n"
                        "env.trace_fle = typo\n"),
                   1)
                   .ok());
  EXPECT_FALSE(RunScenario("environment = crawdad\n"
                   "protocol = push-sum-revert\n",  // no trace_file
                   1)
                   .ok());
  // env.gossip_seconds is the rounds driver's pacing knob; under the trace
  // driver the cadence is the top-level gossip_period (haggle's rule).
  EXPECT_FALSE(RunScenario(Spec("driver = trace\n"
                        "protocol = push-sum-revert\n"
                        "env.gossip_seconds = 10\n"),
                   1)
                   .ok());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
