// The churn.* spec family end to end: --dry-run must reject every
// driver/protocol/knob mismatch with a diagnostic naming the offense, a
// valid churned experiment must validate and run, and the run's output
// must be byte-identical at any executor thread count — the determinism
// contract extended to two-sided membership.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

Status DryRun(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return ValidateExperiment((*specs)[0]);
}

void ExpectDryRunError(const std::string& text, const std::string& needle) {
  const Status st = DryRun(text);
  EXPECT_FALSE(st.ok()) << "spec unexpectedly valid:\n" << text;
  if (!st.ok()) {
    EXPECT_NE(st.message().find(needle), std::string::npos)
        << "diagnostic '" << st.message() << "' does not mention '"
        << needle << "'";
  }
}

// A minimal valid churned experiment the rejection cases perturb.
constexpr const char* kChurnBase =
    "protocol = push-sum\n"
    "hosts = 32\n"
    "rounds = 20\n"
    "record = rms\n"
    "churn.initial = 16\n"
    "churn.arrival_rate = 1\n"
    "churn.death_prob = 0.02\n"
    "churn.rebirth_prob = 0.1\n";

TEST(ChurnSpecTest, ValidChurnSpecPassesDryRun) {
  const Status st = DryRun(kChurnBase);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// ------------------------------------------- driver/protocol mismatch ---

TEST(ChurnSpecTest, RejectsChurnUnderAsyncDriver) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\ndriver = async\n"
      "record = final_rms\nchurn.death_prob = 0.02\n",
      "round-indexed");
}

TEST(ChurnSpecTest, RejectsChurnUnderTraceDriver) {
  ExpectDryRunError(
      "protocol = push-sum\ndriver = trace\nenvironment = haggle\n"
      "record = rms\nchurn.death_prob = 0.02\n",
      "rounds driver");
}

TEST(ChurnSpecTest, RejectsChurnOnWholeTrialRunner) {
  ExpectDryRunError(
      "protocol = tag-tree\nhosts = 32\nrecord = rms\n"
      "churn.death_prob = 0.02\n",
      "owns its whole trial loop");
}

TEST(ChurnSpecTest, RejectsChurnOnJoinIncapableProtocol) {
  // node-aggregator has no on_join reset hook; churn must fail loudly
  // instead of gossiping stale state into reborn hosts.
  ExpectDryRunError(
      "protocol = node-aggregator\nhosts = 32\nrecord = rms\n"
      "churn.death_prob = 0.02\n",
      "cannot admit hosts");
}

TEST(ChurnSpecTest, RejectsChurnCombinedWithFailureKind) {
  ExpectDryRunError(std::string(kChurnBase) +
                        "failure.kind = churn\nfailure.death_prob = 0.01\n",
                    "cannot be combined");
}

// --------------------------------------------------------- knob ranges ---

TEST(ChurnSpecTest, RejectsInitialExceedingHosts) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.initial = 33\n",
      "exceeds hosts");
}

TEST(ChurnSpecTest, RejectsMaxAliveExceedingHosts) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.arrival_rate = 1\nchurn.max_alive = 64\n",
      "exceeds hosts");
}

TEST(ChurnSpecTest, RejectsUnknownChurnKey) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.arrivalrate = 1\n",
      "churn.arrivalrate");
}

TEST(ChurnSpecTest, RejectsOutOfRangeProbabilities) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.death_prob = 1.5\n",
      "churn.death_prob");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.rebirth_prob = -0.1\n",
      "churn.rebirth_prob");
}

TEST(ChurnSpecTest, RejectsInvertedWindow) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrecord = rms\n"
      "churn.start = 10\nchurn.end = 5\n",
      "churn.end");
}

TEST(ChurnSpecTest, RejectsBadSweptChurnValue) {
  // The base spec validates; the swept value 2.0 lands out of range — the
  // per-variant dry-run pass must catch it.
  ExpectDryRunError(std::string(kChurnBase) +
                        "sweep = churn.death_prob: 0.01, 2.0\n",
                    "churn.death_prob");
}

// ----------------------------- static preflight of the rounds driver ---

TEST(ChurnSpecTest, RejectsUnknownSeedStreamStatically) {
  ExpectDryRunError(std::string(kChurnBase) + "seeds.bogus_stream = 4\n",
                    "seeds.bogus_stream");
}

TEST(ChurnSpecTest, RejectsEmptyTailWindowStatically) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrounds = 20\n"
      "record = rms_tail_mean\nrecord.from = 20\n",
      "leaves no rounds");
}

TEST(ChurnSpecTest, RejectsEmptyTailWindowUnderRoundsSweep) {
  // The base spec's window is fine at rounds = 40; the swept variant
  // rounds = 10 empties it.
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 32\nrounds = 40\n"
      "record = rms_tail_mean\nrecord.from = 20\n"
      "sweep = rounds: 40, 10\n",
      "leaves no rounds");
}

TEST(ChurnSpecTest, RejectsDegreeNotBelowHostsStatically) {
  // random-graph needs `degree` distinct neighbors per host; the default
  // degree = 8 cannot fit in a 6-host universe. Used to hard-abort at
  // environment construction.
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 6\nenvironment = random-graph\n"
      "record = rms\n",
      "must be below hosts");
}

// A hosts sweep leaves the base spec's hosts field a placeholder no unit
// executes with; hosts-dependent validation must skip it and judge each
// swept variant instead (the ablation corpus specs rely on this).
TEST(ChurnSpecTest, HostsSweepSkipsThePlaceholderButChecksVariants) {
  EXPECT_TRUE(DryRun("protocol = push-sum\nrecord = rms\n"
                     "sweep = hosts: 1000, 10000\n")
                  .ok());
  EXPECT_TRUE(DryRun("protocol = push-sum\nenvironment = random-graph\n"
                     "record = rms\nsweep = hosts: 100, 1000\n")
                  .ok());
  // ...while a swept hosts value that breaks an env constraint still
  // fails: 6 hosts cannot hold the default degree-8 random graph.
  ExpectDryRunError(
      "protocol = push-sum\nenvironment = random-graph\n"
      "record = rms\nsweep = hosts: 100, 6\n",
      "must be below hosts");
  // churn.initial is judged against each swept hosts value, not the base
  // placeholder.
  EXPECT_TRUE(DryRun("protocol = push-sum\nrecord = rms\n"
                     "churn.initial = 50\nchurn.arrival_rate = 1\n"
                     "sweep = hosts: 100, 200\n")
                  .ok());
  ExpectDryRunError(
      "protocol = push-sum\nrecord = rms\n"
      "churn.initial = 50\nchurn.arrival_rate = 1\n"
      "sweep = hosts: 100, 20\n",
      "exceeds hosts");
}

// --------------------------------------------------------- determinism ---

TEST(ChurnSpecTest, ChurnedRunIsByteIdenticalAcrossThreads) {
  const std::string text = std::string("name = churn_det\n") + kChurnBase +
                           "trials = 3\nseed = 512\n"
                           "churn.max_alive = 28\n"
                           "sweep = churn.arrival_rate: 0.5, 2\n";
  const auto specs = ParseScenarioFile(text);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 1u);
  std::string rendered[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    Result<std::vector<ResultTable>> tables =
        RunExperiment((*specs)[0], threads[i]);
    ASSERT_TRUE(tables.ok()) << tables.status().ToString();
    Result<std::string> out = RenderTables(*tables, "churn_det", "csv");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    rendered[i] = *out;
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_NE(rendered[0].find("rms"), std::string::npos);
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
