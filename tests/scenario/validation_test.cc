// Dry-run validation error paths: ValidateExperiment (the whole backing of
// `dynagg_run --dry-run`) must reject knob/protocol mismatches, malformed
// derived-record arguments and driver-incompatible keys up front — without
// building environments or swarms — and the diagnostics must name the
// offending key or selector.

#include <string>

#include <gtest/gtest.h>

#include "scenario/executor.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

/// Parses a single-experiment scenario text and returns its dry-run
/// verdict (parse errors fail the test — these cases target validation).
Status DryRun(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return ValidateExperiment((*specs)[0]);
}

void ExpectDryRunError(const std::string& text, const std::string& needle) {
  const Status st = DryRun(text);
  EXPECT_FALSE(st.ok()) << "spec unexpectedly valid:\n" << text;
  if (!st.ok()) {
    EXPECT_NE(st.message().find(needle), std::string::npos)
        << "diagnostic '" << st.message() << "' does not mention '"
        << needle << "'";
  }
}

// ------------------------------------------------ protocol knob paths ---

TEST(DryRunValidationTest, RejectsUnknownGossipMode) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nprotocol.mode = pull\n",
      "protocol.mode must be push or pushpull");
}

TEST(DryRunValidationTest, RejectsRevertOnProtocolWithoutReversion) {
  // push-sum has no reversion machinery; the knob must fail loudly instead
  // of being silently ignored.
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nprotocol.revert = adaptive\n",
      "protocol.revert");
  // ...while the same key validates on push-sum-revert.
  EXPECT_TRUE(DryRun("protocol = push-sum-revert\nhosts = 16\n"
                     "protocol.revert = adaptive\n")
                  .ok());
}

TEST(DryRunValidationTest, RejectsUnknownRevertValue) {
  ExpectDryRunError(
      "protocol = push-sum-revert\nhosts = 16\nprotocol.revert = maybe\n",
      "protocol.revert must be fixed or adaptive");
}

TEST(DryRunValidationTest, RejectsOutOfRangeKnobs) {
  ExpectDryRunError(
      "protocol = epoch-push-sum\nhosts = 16\nprotocol.epoch_length = 0\n",
      "protocol.epoch_length");
  ExpectDryRunError(
      "protocol = full-transfer\nhosts = 16\nprotocol.parcels = 0\n",
      "protocol.parcels");
  ExpectDryRunError(
      "protocol = extreme-recovery\nhosts = 16\n"
      "protocol.recover_pct = 101\n",
      "protocol.recover_pct");
}

TEST(DryRunValidationTest, RejectsConflictingEpochPhaseKnobs) {
  ExpectDryRunError(
      "protocol = epoch-push-sum\nhosts = 16\n"
      "protocol.phase_spread = 2\nprotocol.random_phases = true\n",
      "protocol.random_phases and protocol.phase_spread");
}

TEST(DryRunValidationTest, RejectsBadKnobValueInSweep) {
  // The base spec is fine; the swept value -1 lands in a validated knob.
  ExpectDryRunError(
      "protocol = full-transfer\nhosts = 16\n"
      "sweep = protocol.parcels: 4, -1\n",
      "protocol.parcels");
}

TEST(DryRunValidationTest, RejectsWorkloadMultiplicityUnderTrace) {
  ExpectDryRunError(
      "protocol = count-sketch-reset\ndriver = trace\n"
      "environment = haggle\nrecord = rms\n"
      "protocol.multiplicity = workload\n",
      "protocol.multiplicity");
}

// --------------------------------------------- derived-record grammar ---

TEST(DryRunValidationTest, RejectsMalformedRoundsBelowThreshold) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\n"
      "record = rounds_below(rms, banana)\n",
      "rounds_below(rms, T)");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = rounds_below(rms)\n",
      "rounds_below(rms, T)");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\n"
      "record = rounds_below(final_error, 1.0)\n",
      "rounds_below(rms, T)");
  EXPECT_TRUE(DryRun("protocol = push-sum\nhosts = 16\n"
                     "record = rounds_below(rms, 1.5)\n")
                  .ok());
}

TEST(DryRunValidationTest, RejectsMalformedRmsAtAndRelErrorArgs) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = rms_at(0)\n", "rms_at");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = rms_at(2.5)\n", "rms_at");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = final_rel_error(-1)\n",
      "final_rel_error");
}

TEST(DryRunValidationTest, RejectsRecoveryRoundsOnForeignSeries) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = recovery_rounds(bytes)\n",
      "recovery_rounds");
}

TEST(DryRunValidationTest, RejectsUnknownRecordKnob) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = rms\n"
      "record.recovery_mutl = 2\n",
      "record.recovery_mutl");
}

TEST(DryRunValidationTest, RejectsCounterQuantilesOutsideUnitInterval) {
  ExpectDryRunError(
      "protocol = count-sketch-reset\nhosts = 16\n"
      "record = counter_quantiles(0.5, 1.5)\n",
      "counter_quantiles");
  // ...and the selector is CSR-only: push-sum has no counters.
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\n"
      "record = counter_quantiles(0.5)\n",
      "counter_quantiles");
}

// ------------------------------------------- driver-compatibility paths ---

TEST(DryRunValidationTest, RejectsGossipBytesOnProtocolWithoutModel) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nrecord = gossip_bytes\n",
      "gossip_bytes");
  EXPECT_TRUE(DryRun("protocol = invert-average\nhosts = 16\n"
                     "record = gossip_bytes\n")
                  .ok());
  EXPECT_TRUE(DryRun("protocol = count-sketch-reset\nhosts = 16\n"
                     "record = gossip_bytes\n")
                  .ok());
}

TEST(DryRunValidationTest, RejectsFailurePlanKeysOnTraceDriver) {
  ExpectDryRunError(
      "protocol = push-sum-revert\ndriver = trace\nenvironment = haggle\n"
      "record = rms\nfailure.kind = churn\nfailure.death_prob = 0.01\n",
      "failure.");
}

TEST(DryRunValidationTest, RejectsRoundMetricsOnTraceDriver) {
  ExpectDryRunError(
      "protocol = push-sum-revert\ndriver = trace\nenvironment = haggle\n"
      "record = rms_tail_mean\n",
      "rms_tail_mean");
}

TEST(DryRunValidationTest, RoundStreamGrammarResolvesAtRunTimeOnly) {
  // The sweepval grammar needs a sweep axis; with one present the spec
  // validates, and the ablation specs rely on it.
  EXPECT_TRUE(DryRun("protocol = push-sum-revert\nhosts = 16\n"
                     "sweep = protocol.lambda: 0.01, 0.1\n"
                     "seeds.round_stream = sweepval*10000+1\n")
                  .ok());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
