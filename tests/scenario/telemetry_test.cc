// Telemetry integration tests: collecting telemetry (summary or profile)
// must leave every experiment result table byte-identical — at any
// executor thread count — and the telemetry summary's counters must be
// exact sums, independent of how units were sharded across workers.
// Also covers the telemetry/sweep validation paths.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

// Two sweep points x two trials with churn and multi-metric recording:
// enough units to shard unevenly across 4 workers.
constexpr const char* kSpec = R"(name = tel
protocol = push-sum-revert
hosts = 48
rounds = 8
trials = 2
seed = 99
sweep = protocol.lambda: 0, 0.05
failure.kind = churn
failure.death_prob = 0.02
record = rms, rms_tail_mean
record.from = 4
)";

ScenarioSpec MustParse(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  return (*specs)[0];
}

std::string MustRenderRun(const ScenarioSpec& spec, const RunOptions& options,
                          ExperimentTelemetry* telemetry) {
  Result<std::vector<ResultTable>> tables =
      RunExperiment(spec, options, telemetry);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  Result<std::string> out = RenderTables(*tables, spec.name, "csv");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

std::vector<double> Column(const CsvTable& table, const std::string& name) {
  const auto& cols = table.columns();
  const auto it = std::find(cols.begin(), cols.end(), name);
  EXPECT_NE(it, cols.end()) << "missing column " << name;
  std::vector<double> out;
  if (it == cols.end()) return out;
  const size_t idx = static_cast<size_t>(it - cols.begin());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.row(r)[idx]);
  }
  return out;
}

TEST(TelemetryRunTest, CollectionDoesNotPerturbResults) {
  const ScenarioSpec spec = MustParse(kSpec);
  const std::string baseline =
      MustRenderRun(spec, RunOptions{1, "off", nullptr}, nullptr);
  for (const char* mode : {"summary", "profile"}) {
    for (const int threads : {1, 4}) {
      ExperimentTelemetry telemetry;
      const std::string got =
          MustRenderRun(spec, RunOptions{threads, mode, nullptr}, &telemetry);
      EXPECT_EQ(got, baseline) << "mode=" << mode << " threads=" << threads;
      EXPECT_FALSE(telemetry.summary.empty());
    }
  }
}

TEST(TelemetryRunTest, CountersAreThreadCountIndependent) {
  const ScenarioSpec spec = MustParse(kSpec);
  ExperimentTelemetry tel1, tel4;
  MustRenderRun(spec, RunOptions{1, "summary", nullptr}, &tel1);
  MustRenderRun(spec, RunOptions{4, "summary", nullptr}, &tel4);
  ASSERT_EQ(tel1.summary.size(), 1u);
  ASSERT_EQ(tel4.summary.size(), 1u);
  const CsvTable& t1 = tel1.summary[0].table;
  const CsvTable& t4 = tel4.summary[0].table;
  EXPECT_EQ(t1.columns(), t4.columns());
  EXPECT_EQ(t1.num_rows(), 2);  // one per sweep point
  // Everything except wall-clock timings is an exact, deterministic count.
  for (const char* col :
       {"lambda", "trials", "rounds", "plan_cache_hits", "plan_cache_rebuilds",
        "alive_bitmap_rebuilds", "rng_draws", "gossip_exchanges",
        "deposit_bytes", "early_stop_rounds"}) {
    EXPECT_EQ(Column(t1, col), Column(t4, col)) << "column " << col;
  }
  EXPECT_GT(Column(t1, "rng_draws")[0], 0);
  EXPECT_GT(Column(t1, "gossip_exchanges")[0], 0);
}

TEST(TelemetryRunTest, UnitsCarrySpansOnlyInProfileMode) {
  const ScenarioSpec spec = MustParse(kSpec);
  ExperimentTelemetry summary_tel, profile_tel;
  MustRenderRun(spec, RunOptions{2, "summary", nullptr}, &summary_tel);
  MustRenderRun(spec, RunOptions{2, "profile", nullptr}, &profile_tel);
  ASSERT_EQ(summary_tel.units.size(), 4u);  // 2 sweep x 2 trials
  ASSERT_EQ(profile_tel.units.size(), 4u);
  for (const auto& unit : summary_tel.units) {
    EXPECT_EQ(unit.rounds, 8);
    EXPECT_TRUE(unit.events.empty());
  }
  for (const auto& unit : profile_tel.units) {
    EXPECT_EQ(unit.rounds, 8);
    EXPECT_FALSE(unit.events.empty());
  }
}

TEST(TelemetryRunTest, OffModeCollectsNothing) {
  const ScenarioSpec spec = MustParse(kSpec);
  ExperimentTelemetry telemetry;
  MustRenderRun(spec, RunOptions{1, "", nullptr}, &telemetry);  // spec: off
  EXPECT_TRUE(telemetry.summary.empty());
  EXPECT_TRUE(telemetry.units.empty());
}

TEST(TelemetryRunTest, ProgressTickerReportsEveryUnit) {
  const ScenarioSpec spec = MustParse(kSpec);
  std::vector<int> done;
  int total = 0;
  RunOptions options;
  options.threads = 2;
  options.on_unit_done = [&](int d, int t) {
    done.push_back(d);
    total = t;
  };
  MustRenderRun(spec, options, nullptr);
  EXPECT_EQ(total, 4);
  ASSERT_EQ(done.size(), 4u);
  // Serialized under the executor mutex: monotonically increasing.
  EXPECT_TRUE(std::is_sorted(done.begin(), done.end()));
  EXPECT_EQ(done.back(), 4);
}

TEST(TelemetryValidationTest, RejectsBadTelemetryValue) {
  const auto specs = ParseScenarioFile("name = t\nprotocol = push-sum\n"
                                       "hosts = 16\ntelemetry = verbose\n");
  EXPECT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("telemetry"), std::string::npos);
}

TEST(TelemetryValidationTest, AcceptsTelemetryModes) {
  for (const char* mode : {"off", "summary", "profile"}) {
    const ScenarioSpec spec = MustParse(
        std::string("name = t\nprotocol = push-sum\nhosts = 16\n") +
        "telemetry = " + mode + "\n");
    EXPECT_EQ(spec.telemetry, mode);
    EXPECT_TRUE(ValidateExperiment(spec).ok());
  }
}

TEST(TelemetryValidationTest, SweptThreadsNeedThreadsCapableProtocol) {
  const std::string sweep = "sweep = intra_round_threads: 1, 2\n";
  const ScenarioSpec ok = MustParse(
      "name = t\nprotocol = push-sum\nprotocol.mode = push\nhosts = 16\n" +
      sweep);
  EXPECT_TRUE(ValidateExperiment(ok).ok());
  const ScenarioSpec bad = MustParse(
      "name = t\nprotocol = epoch-push-sum\nhosts = 16\n" + sweep);
  const Status st = ValidateExperiment(bad);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("intra_round_threads"), std::string::npos);
}

TEST(TelemetryValidationTest, SweptThreadsDoNotChangeMetrics) {
  const ScenarioSpec spec = MustParse(
      "name = t\nprotocol = push-sum\nprotocol.mode = push\nhosts = 64\n"
      "rounds = 6\nseed = 7\nsweep = intra_round_threads: 1, 2\n"
      "record = rms_tail_mean\nrecord.from = 3\n");
  Result<std::vector<ResultTable>> tables = RunExperiment(spec, 1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.num_rows(), 2);
  // Scatter parallelism must be invisible in the recorded metric.
  EXPECT_EQ(Column(table, "rms_tail_mean")[0],
            Column(table, "rms_tail_mean")[1]);
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
