// quantile(metric, q) record tests: spec grammar (paren-aware record
// lists), rounds-driver computation, executor merge (sweeps, trials,
// aggregation, thread-count determinism), sink rendering, and the
// intra_round_threads spec key's validation + determinism.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum_revert.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/worker_pool.h"
#include "sim/workload.h"

namespace dynagg {
namespace scenario {
namespace {

Result<std::vector<ResultTable>> RunScenario(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return RunExperiment((*specs)[0], threads);
}

// ------------------------------------------------------------ grammar ---

TEST(QuantileSpecTest, RecordListSplitsOnTopLevelCommasOnly) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "record = rms, quantile(final_error, 0.5), quantile(final_error,0.99)\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  const auto& metrics = (*specs)[0].metrics;
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].ToString(), "rms");
  // Argument spelling is normalized (spaces dropped) so duplicate
  // detection is whitespace-insensitive.
  EXPECT_EQ(metrics[1].ToString(), "quantile(final_error,0.5)");
  EXPECT_EQ(metrics[2].ToString(), "quantile(final_error,0.99)");
}

TEST(QuantileSpecTest, NormalizationCatchesSpacedDuplicates) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "record = quantile(final_error,0.5), quantile(final_error, 0.5)\n");
  EXPECT_FALSE(specs.ok());
}

TEST(QuantileSpecTest, UnmatchedParenIsAnError) {
  EXPECT_FALSE(ParseScenarioFile("protocol = push-sum\n"
                                 "record = quantile(final_error, 0.5\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = push-sum\n"
                                 "record = rms), cdf\n")
                   .ok());
}

TEST(QuantileSpecTest, BadQuantileArgsFailAtExecution) {
  for (const char* record :
       {"quantile(final_error)",          // missing q
        "quantile(rms, 0.5)",             // unsupported sample metric
        "quantile(final_error, 1.5)",     // q out of range
        "quantile(final_error, x)",       // not a number
        "quantile(final_error, nan)",     // strtod accepts it; we must not
        "quantile(final_error, 0.5, 1)",  // too many arguments
        // same quantile spelled differently: selector dedup cannot catch
        // it, the driver's parsed-q dedup must (as an error, not a crash)
        "quantile(final_error, 0.5), quantile(final_error, 0.50)"}
  ) {
    const auto result = RunScenario(std::string("protocol = push-sum\n"
                                        "hosts = 20\nrounds = 2\nrecord = ") +
                                record + "\n",
                            1);
    EXPECT_FALSE(result.ok()) << record;
  }
}

// -------------------------------------------------------- computation ---

TEST(QuantileRecordTest, MatchesHandRolledLoop) {
  const int n = 200;
  const int rounds = 15;
  const uint64_t seed = 321;

  // Hand-rolled replica of the rounds driver's trial.
  const std::vector<double> values = UniformWorkloadValues(n, seed);
  PushSumRevertSwarm swarm(values, PsrParams{.lambda = 0.01});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 1));
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
  }
  const double truth = TrueAverage(values, pop);
  std::vector<double> errors;
  for (HostId id = 0; id < n; ++id) {
    errors.push_back(std::abs(swarm.Estimate(id) - truth));
  }
  std::sort(errors.begin(), errors.end());

  const auto tables = RunScenario(
      "name = qparity\n"
      "protocol = push-sum-revert\n"
      "hosts = 200\n"
      "rounds = 15\n"
      "seed = 321\n"
      "record = quantile(final_error, 0.5), quantile(final_error, 0.9)\n",
      1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.columns().size(), 2u);
  EXPECT_EQ(table.columns()[0], "final_error_p50");
  EXPECT_EQ(table.columns()[1], "final_error_p90");
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], QuantileFromSorted(errors, 0.5));
  EXPECT_EQ(table.row(0)[1], QuantileFromSorted(errors, 0.9));
}

TEST(QuantileRecordTest, AggregatesAcrossTrialsAndSweeps) {
  const std::string text =
      "name = qagg\n"
      "protocol = push-sum-revert\n"
      "hosts = 60\n"
      "rounds = 8\n"
      "seed = 5\n"
      "trials = 3\n"
      "sweep = protocol.lambda: 0.01, 0.1\n"
      "record = quantile(final_error, 0.5)\n"
      "aggregate = mean, stddev\n";
  const auto tables = RunScenario(text, 1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  const CsvTable& table = (*tables)[0].table;
  // lambda axis + p50 mean/stddev, one row per sweep value.
  ASSERT_EQ(table.columns().size(), 3u);
  EXPECT_EQ(table.columns()[0], "lambda");
  EXPECT_EQ(table.columns()[1], "final_error_p50_mean");
  EXPECT_EQ(table.columns()[2], "final_error_p50_stddev");
  ASSERT_EQ(table.num_rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    EXPECT_GE(table.row(r)[1], 0.0);
    EXPECT_GT(table.row(r)[2], 0.0);  // real trial-to-trial spread
  }
}

TEST(QuantileRecordTest, ThreadCountDeterminism) {
  const std::string text =
      "name = qthreads\n"
      "protocol = push-sum\n"
      "hosts = 50\n"
      "rounds = 6\n"
      "seed = 77\n"
      "trials = 4\n"
      "record = rms, quantile(final_error, 0.25), quantile(final_error, 1)\n";
  const auto one = RunScenario(text, 1);
  const auto four = RunScenario(text, 4);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_TRUE(four.ok());
  const auto csv1 = RenderTables(*one, "qthreads", "csv");
  const auto csv4 = RenderTables(*four, "qthreads", "csv");
  ASSERT_TRUE(csv1.ok());
  ASSERT_TRUE(csv4.ok());
  EXPECT_EQ(*csv1, *csv4);
}

// ---------------------------------------------------------- rendering ---

TEST(QuantileRecordTest, SinkRendersSummaryColumns) {
  const auto tables = RunScenario(
      "name = qsink\n"
      "protocol = push-sum\n"
      "hosts = 30\n"
      "rounds = 4\n"
      "seed = 3\n"
      "record = rms_tail_mean, quantile(final_error, 0.999)\n",
      1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  const auto csv = RenderTables(*tables, "qsink", "csv");
  ASSERT_TRUE(csv.ok());
  EXPECT_NE(csv->find("rms_tail_mean,final_error_p99.9"), std::string::npos)
      << *csv;
  const auto jsonl = RenderTables(*tables, "qsink", "jsonl");
  ASSERT_TRUE(jsonl.ok());
  EXPECT_NE(jsonl->find("\"final_error_p99.9\""), std::string::npos)
      << *jsonl;
}

// ------------------------------------------------ intra_round_threads ---

TEST(IntraRoundThreadsTest, SpecKeyValidation) {
  EXPECT_FALSE(ParseScenarioFile("protocol = push-sum\n"
                                 "intra_round_threads = 0\n")
                   .ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = push-sum\n"
                                 "intra_round_threads = x\n")
                   .ok());
  const auto specs = ParseScenarioFile("protocol = push-sum\n"
                                       "intra_round_threads = 4\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ((*specs)[0].intra_round_threads, 4);
}

TEST(IntraRoundThreadsTest, CustomProtocolRejectedAtValidation) {
  const auto specs = ParseScenarioFile("protocol = tag-tree\n"
                                       "hosts = 20\n"
                                       "intra_round_threads = 2\n");
  ASSERT_TRUE(specs.ok());
  // tag-tree owns its whole trial loop; --dry-run (ValidateExperiment)
  // must reject the knob, not silently ignore it.
  EXPECT_FALSE(ValidateExperiment((*specs)[0]).ok());
}

TEST(IntraRoundThreadsTest, ExchangeOnlyProtocolRejectedAtValidation) {
  // count-sketch rounds are sequential pairwise merges with no
  // data-parallel apply phase; --dry-run must reject the knob statically
  // (ProtocolDef::threads_capable), not first at execution.
  const auto specs = ParseScenarioFile("protocol = count-sketch\n"
                                       "hosts = 20\n"
                                       "intra_round_threads = 2\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_FALSE(ValidateExperiment((*specs)[0]).ok());
  // ...while a push-scatter protocol passes.
  const auto ok_specs = ParseScenarioFile("protocol = push-sum\n"
                                          "hosts = 20\n"
                                          "intra_round_threads = 2\n");
  ASSERT_TRUE(ok_specs.ok());
  EXPECT_TRUE(ValidateExperiment((*ok_specs)[0]).ok());
}

/// Forces the sharded scatter on single-CPU CI hosts (the kernel clamps
/// intra_round_threads to the visible CPUs otherwise); restored on scope
/// exit even when an ASSERT bails out of the test early.
class ScopedVisibleCpus {
 public:
  explicit ScopedVisibleCpus(int n) { WorkerPool::OverrideVisibleCpusForTest(n); }
  ~ScopedVisibleCpus() { WorkerPool::OverrideVisibleCpusForTest(0); }
};

TEST(IntraRoundThreadsTest, OutputBitIdenticalToSequential) {
  // This also runs the worker pool nested under the executor's trial
  // threads — the production shape.
  const ScopedVisibleCpus forced(4);
  const std::string base =
      "name = scatter\n"
      "protocol = push-sum-revert\n"
      "protocol.mode = push\n"
      "hosts = 5000\n"  // above the kernel's parallel-slots gate
      "rounds = 5\n"
      "seed = 11\n"
      "record = rms, quantile(final_error, 0.5)\n";
  const auto seq = RunScenario(base + "intra_round_threads = 1\n", 1);
  const auto par = RunScenario(base + "intra_round_threads = 4\n", 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  const auto csv_seq = RenderTables(*seq, "scatter", "csv");
  const auto csv_par = RenderTables(*par, "scatter", "csv");
  ASSERT_TRUE(csv_seq.ok());
  ASSERT_TRUE(csv_par.ok());
  EXPECT_EQ(*csv_seq, *csv_par);
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
