// Recorder-era parity tests: the scenario ports of the retired bench
// binaries (fig06_counter_cdf, fig09_counting_failure, tab_bandwidth) must
// reproduce the legacy loops bit-identically, and the node-aggregator
// protocol must drive the serialized facade correctly. The replicas below
// are the exact code of the retired mains at reduced scale (same RNG
// streams, same call order).

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "scenario/executor.h"
#include "scenario/spec.h"
#include "sim/bandwidth.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"

namespace dynagg {
namespace scenario {
namespace {

CsvTable MustRun(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  EXPECT_EQ(tables->size(), 1u);
  return std::move((*tables)[0].table);
}

// --------------------------------------- parity: fig06 counter CDF ---

TEST(RecorderParityTest, CounterCdfMatchesLegacyFig06Loop) {
  const int n = 300;
  const int rounds = 10;
  const int max_counter = 8;
  const uint64_t seed = 20090404;

  // Hand-rolled replica of bench/fig06_counter_cdf.cc RunOneSize().
  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  params.cutoff_enabled = false;
  CsrSwarm swarm(ones, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, n));  // legacy: per-size round stream
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
  }
  const int levels = params.levels;
  std::vector<std::vector<int64_t>> histograms(
      levels, std::vector<int64_t>(max_counter + 1, 0));
  std::vector<int64_t> finite_totals(levels, 0);
  for (HostId id = 0; id < n; ++id) {
    const CountSketchResetNode& node = swarm.node(id);
    for (int b = 0; b < params.bins; ++b) {
      for (int k = 0; k < levels; ++k) {
        const uint8_t c = node.counter(b, k);
        if (c == kCsrInfinity) continue;
        ++histograms[k][c <= max_counter ? c : max_counter];
        ++finite_totals[k];
      }
    }
  }
  std::vector<std::vector<double>> expected;  // bit, counter_value, cdf
  for (int k = 0; k < levels; ++k) {
    if (finite_totals[k] < n / 100 + 1) continue;
    int64_t cumulative = 0;
    for (int c = 0; c <= max_counter; ++c) {
      cumulative += histograms[k][c];
      expected.push_back({static_cast<double>(k), static_cast<double>(c),
                          static_cast<double>(cumulative) /
                              static_cast<double>(finite_totals[k])});
    }
  }
  ASSERT_FALSE(expected.empty());

  const CsvTable table = MustRun(
      "name = fig06_small\n"
      "protocol = count-sketch-reset\n"
      "protocol.cutoff_enabled = false\n"
      "hosts = 300\n"
      "rounds = 10\n"
      "seed = 20090404\n"
      "seeds.round_stream = hosts\n"
      "record = cdf(counter)\n"
      "record.max_counter = 8\n",
      1);
  ASSERT_EQ(table.columns().size(), 3u);
  EXPECT_EQ(table.columns()[0], "bit");
  EXPECT_EQ(table.columns()[1], "counter_value");
  EXPECT_EQ(table.columns()[2], "cdf");
  ASSERT_EQ(table.num_rows(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(table.row(i)[0], expected[i][0]) << "row " << i;
    EXPECT_EQ(table.row(i)[1], expected[i][1]) << "row " << i;
    // Bit-identical: same pooling, same clamping, same division.
    EXPECT_EQ(table.row(i)[2], expected[i][2]) << "row " << i;
  }
}

// --------------------------------- parity: fig09 counting failure ---

TEST(RecorderParityTest, CountingUnderFailureMatchesLegacyFig09Loop) {
  const int n = 400;
  const int rounds = 12;
  const int fail_round = 5;
  const uint64_t seed = 20090403;

  // Hand-rolled replica of bench/fig09_counting_failure.cc Run().
  std::vector<std::vector<double>> expected;  // limiting, round, rms
  const std::vector<int64_t> ones(n, 1);
  for (const bool limiting : {true, false}) {
    CsrParams params;
    params.cutoff_enabled = limiting;
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    Rng fail_rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, fail_round, 0.5, fail_rng);
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = pop.num_alive();
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.EstimateCount(id); });
      expected.push_back(
          {limiting ? 1.0 : 0.0, static_cast<double>(round + 1), rms});
    });
  }

  const CsvTable table = MustRun(
      "name = fig09_small\n"
      "protocol = count-sketch-reset\n"
      "hosts = 400\n"
      "rounds = 12\n"
      "seed = 20090403\n"
      "sweep = protocol.cutoff_enabled: 1, 0\n"
      "failure.kind = kill_random_fraction\n"
      "failure.round = 5\n"
      "failure.fraction = 0.5\n"
      "record = rms\n",
      4);
  ASSERT_EQ(table.num_rows(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    ASSERT_EQ(table.row(i).size(), 3u);
    EXPECT_EQ(table.row(i)[0], expected[i][0]) << "row " << i;
    EXPECT_EQ(table.row(i)[1], expected[i][1]) << "row " << i;
    EXPECT_EQ(table.row(i)[2], expected[i][2]) << "row " << i;
  }
}

// ------------------------------------- parity: bandwidth table ---

struct LegacyBandwidthRow {
  double msgs_per_host_round;
  double bytes_per_host_round;
  double state_bytes;
};

template <typename Swarm>
LegacyBandwidthRow LegacyMeasure(Swarm& swarm, int n, int rounds,
                                 double state, uint64_t seed) {
  // Hand-rolled replica of bench/tab_bandwidth.cc Measure().
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 1));
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
  }
  const double denom = static_cast<double>(n) * rounds;
  return {meter.total().messages / denom, meter.total().bytes / denom,
          state};
}

void ExpectBandwidthParity(const std::string& protocol_key,
                           const LegacyBandwidthRow& expected, int n,
                           int rounds, uint64_t seed) {
  const CsvTable table = MustRun(
      "name = bw\n"
      "protocol = " + protocol_key + "\n" +
      "hosts = " + std::to_string(n) + "\n" +
      "rounds = " + std::to_string(rounds) + "\n" +
      "seed = " + std::to_string(seed) + "\n" +
      "record = bandwidth\n",
      1);
  ASSERT_EQ(table.num_rows(), 1) << protocol_key;
  EXPECT_EQ(table.row(0)[0], expected.msgs_per_host_round) << protocol_key;
  EXPECT_EQ(table.row(0)[1], expected.bytes_per_host_round) << protocol_key;
  EXPECT_EQ(table.row(0)[2], expected.state_bytes) << protocol_key;
}

TEST(RecorderParityTest, BandwidthMatchesLegacyTabBandwidthLoop) {
  const int n = 200;
  const int rounds = 5;
  const uint64_t seed = 20090416;
  const std::vector<double> values = UniformWorkloadValues(n, seed);
  const std::vector<int64_t> ones(n, 1);

  {
    PushSumSwarm swarm(values, GossipMode::kPushPull);
    ExpectBandwidthParity(
        "push-sum",
        LegacyMeasure(swarm, n, rounds, 2.0 * sizeof(double), seed), n,
        rounds, seed);
  }
  {
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.01, .mode = GossipMode::kPushPull});
    ExpectBandwidthParity(
        "push-sum-revert",
        LegacyMeasure(swarm, n, rounds, 3.0 * sizeof(double), seed), n,
        rounds, seed);
  }
  {
    FullTransferSwarm swarm(values,
                            {.lambda = 0.1, .parcels = 4, .window = 3});
    ExpectBandwidthParity(
        "full-transfer",
        LegacyMeasure(swarm, n, rounds, (2.0 + 2.0 * 3) * sizeof(double),
                      seed),
        n, rounds, seed);
  }
  {
    CountSketchSwarm swarm(ones, CountSketchParams{});
    ExpectBandwidthParity(
        "count-sketch",
        LegacyMeasure(swarm, n, rounds, 64.0 * sizeof(uint64_t), seed), n,
        rounds, seed);
  }
  {
    CsrSwarm swarm(ones, CsrParams{});
    ExpectBandwidthParity("count-sketch-reset",
                          LegacyMeasure(swarm, n, rounds, 64.0 * 24.0, seed),
                          n, rounds, seed);
  }
}

// Regression: the counter-CDF bucket structure must be seed-independent —
// the sparse-level skip rule is applied at assembly (to pooled counts under
// aggregation), so multi-trial aggregated runs cannot fail on borderline
// levels that only some trials would have kept.
TEST(RecorderParityTest, CounterCdfPoolsAcrossTrialsUnderAggregation) {
  const CsvTable table = MustRun(
      "name = fig06_agg\n"
      "protocol = count-sketch-reset\n"
      "protocol.cutoff_enabled = false\n"
      "hosts = 200\n"
      "rounds = 6\n"
      "trials = 3\n"
      "seed = 77\n"
      "record = cdf(counter)\n"
      "record.max_counter = 6\n"
      "aggregate = mean\n",
      3);
  ASSERT_GT(table.num_rows(), 0);
  // Pooled CDF per bit: monotone within each key group, 1 at the top.
  double prev = 0.0;
  double prev_bit = -1.0;
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    const double bit = table.row(i)[0];
    if (bit != prev_bit) {
      if (i > 0) {
        EXPECT_EQ(prev, 1.0) << "bit " << prev_bit;
      }
      prev = 0.0;
      prev_bit = bit;
    }
    EXPECT_GE(table.row(i)[2], prev);
    prev = table.row(i)[2];
  }
  EXPECT_EQ(prev, 1.0);
}

// ------------------------------------------- node-aggregator facade ---

TEST(NodeAggregatorProtocolTest, AverageConvergesOverWirePath) {
  const CsvTable table = MustRun(
      "name = facade\n"
      "protocol = node-aggregator\n"
      "protocol.lambda = 0.05\n"
      "protocol.bins = 16\n"
      "protocol.levels = 12\n"
      "hosts = 64\n"
      "rounds = 40\n"
      "seed = 7\n"
      "record = rms\n",
      1);
  ASSERT_EQ(table.num_rows(), 40);
  // The serialized exchanges must actually average: the RMS deviation from
  // the true average collapses by at least 5x over the run (reversion
  // leaves a lambda-dependent floor, so demand contraction, not zero).
  const double first = table.row(0)[1];
  const double last = table.row(table.num_rows() - 1)[1];
  EXPECT_LT(last, first / 5.0);
}

TEST(NodeAggregatorProtocolTest, CountAndSumMetricsTrackTruth) {
  const CsvTable count = MustRun(
      "name = facade_count\n"
      "protocol = node-aggregator\n"
      "protocol.metric = count\n"
      "hosts = 50\n"
      "rounds = 40\n"
      "seed = 11\n"
      "record = rms\n",
      1);
  // FM-sketch counting is coarse (64 bins ~ 10% expected error); the
  // final deviation must at least be well inside the trivial n-sized error.
  EXPECT_LT(count.row(count.num_rows() - 1)[1], 25.0);

  const CsvTable sum = MustRun(
      "name = facade_sum\n"
      "protocol = node-aggregator\n"
      "protocol.metric = sum\n"
      "hosts = 50\n"
      "rounds = 40\n"
      "seed = 11\n"
      "record = rms_tail_mean\n"
      "record.from = 30\n",
      1);
  ASSERT_EQ(sum.num_rows(), 1);
  EXPECT_GT(sum.row(0)[0], 0.0);
}

TEST(NodeAggregatorProtocolTest, BandwidthMeasuresSerializedPayloads) {
  const CsvTable table = MustRun(
      "name = facade_bw\n"
      "protocol = node-aggregator\n"
      "protocol.bins = 16\n"
      "protocol.levels = 12\n"
      "hosts = 32\n"
      "rounds = 6\n"
      "seed = 3\n"
      "record = bandwidth\n",
      1);
  ASSERT_EQ(table.num_rows(), 1);
  // Uniform full connectivity: every alive initiator completes one
  // request/reply exchange per round.
  EXPECT_EQ(table.row(0)[0], 2.0);
  // Each payload carries the 3-byte header, the 16-byte mass and the
  // serialized 16x12 counter array (plus its geometry framing), so the
  // per-host traffic must exceed 2 x 192 bytes and stay in the same order
  // of magnitude.
  EXPECT_GT(table.row(0)[1], 2.0 * 16 * 12);
  EXPECT_LT(table.row(0)[1], 4.0 * (16 * 12 + 64));
  // state_bytes: PSR mass (3 doubles) + counter array.
  EXPECT_EQ(table.row(0)[2], 3.0 * sizeof(double) + 16.0 * 12.0);
}

TEST(NodeAggregatorProtocolTest, DeterministicAcrossThreadCounts) {
  const char* text =
      "name = facade_det\n"
      "protocol = node-aggregator\n"
      "hosts = 40\n"
      "rounds = 10\n"
      "trials = 3\n"
      "seed = 21\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.02\n"
      "record = rms\n";
  const CsvTable serial = MustRun(text, 1);
  const CsvTable parallel = MustRun(text, 6);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
