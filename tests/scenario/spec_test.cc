#include "scenario/spec.h"

#include <gtest/gtest.h>

namespace dynagg {
namespace scenario {
namespace {

TEST(ParseHelpersTest, StrictInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_EQ(ParseInt64("0x10").value(), 16);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(ParseHelpersTest, StrictDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e-3").value(), 1e-3);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.25furlongs").ok());
}

TEST(ParseHelpersTest, StrictBool) {
  EXPECT_TRUE(ParseBool("true").value());
  EXPECT_TRUE(ParseBool("1").value());
  EXPECT_FALSE(ParseBool("off").value());
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(SpecParseTest, MinimalFileUsesDefaults) {
  const auto specs =
      ParseScenarioFile("protocol = push-sum\n", "from_file");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 1u);
  const ScenarioSpec& spec = (*specs)[0];
  EXPECT_EQ(spec.name, "from_file");
  EXPECT_EQ(spec.protocol, "push-sum");
  EXPECT_EQ(spec.environment, "uniform");
  EXPECT_EQ(spec.rounds, 200);
  EXPECT_EQ(spec.trials, 1);
  EXPECT_EQ(spec.format, "csv");
  EXPECT_TRUE(spec.sweep_key.empty());
}

TEST(SpecParseTest, FullFileWithCommentsAndParams) {
  const char* text =
      "# header comment\n"
      "name = my_exp   # trailing comment\n"
      "protocol = push-sum-revert\n"
      "environment = spatial\n"
      "hosts = 1024\n"
      "rounds = 60\n"
      "trials = 5\n"
      "seed = 20090401\n"
      "\n"
      "protocol.lambda = 0.05\n"
      "env.width = 32\n"
      "failure.kind = churn\n"
      "record.kind = tail_mean\n"
      "seeds.round_stream = 77\n";
  const auto specs = ParseScenarioFile(text);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  const ScenarioSpec& spec = (*specs)[0];
  EXPECT_EQ(spec.name, "my_exp");
  EXPECT_EQ(spec.hosts, 1024);
  EXPECT_EQ(spec.rounds, 60);
  EXPECT_EQ(spec.trials, 5);
  EXPECT_EQ(spec.seed, 20090401u);
  EXPECT_DOUBLE_EQ(spec.ParamDouble("protocol.lambda", 0).value(), 0.05);
  EXPECT_EQ(spec.ParamInt("env.width", 0).value(), 32);
  EXPECT_EQ(spec.ParamString("failure.kind", "").value(), "churn");
  EXPECT_EQ(spec.ParamInt("seeds.round_stream", 1).value(), 77);
  // Absent keys fall back to the caller's default.
  EXPECT_EQ(spec.ParamInt("env.height", 99).value(), 99);
}

TEST(SpecParseTest, SectionsInheritAndOverrideGlobals) {
  const char* text =
      "name = base\n"
      "hosts = 100\n"
      "seed = 7\n"
      "protocol.lambda = 0.5\n"
      "\n"
      "[a]\n"
      "protocol = push-sum\n"
      "\n"
      "[b]\n"
      "protocol = push-sum-revert\n"
      "hosts = 200\n"
      "protocol.lambda = 0.9\n";
  const auto specs = ParseScenarioFile(text);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name, "base/a");
  EXPECT_EQ((*specs)[0].hosts, 100);
  EXPECT_EQ((*specs)[0].seed, 7u);
  EXPECT_DOUBLE_EQ((*specs)[0].ParamDouble("protocol.lambda", 0).value(),
                   0.5);
  EXPECT_EQ((*specs)[1].name, "base/b");
  EXPECT_EQ((*specs)[1].hosts, 200);
  EXPECT_DOUBLE_EQ((*specs)[1].ParamDouble("protocol.lambda", 0).value(),
                   0.9);
}

TEST(SpecParseTest, SweepParses) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum-revert\n"
      "sweep = protocol.lambda: 0, 0.001, 0.5\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  const ScenarioSpec& spec = (*specs)[0];
  EXPECT_EQ(spec.sweep_key, "protocol.lambda");
  ASSERT_EQ(spec.sweep_values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.sweep_values[1], 0.001);
}

TEST(SpecParseTest, SweepOverHostsParses) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\nsweep = hosts: 1000, 10000\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_EQ((*specs)[0].sweep_key, "hosts");
}

TEST(SpecParseTest, UnknownTopLevelKeyIsErrorWithLineNumber) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "prtocol = typo\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(specs.status().message().find("line 2"), std::string::npos)
      << specs.status().ToString();
  EXPECT_NE(specs.status().message().find("prtocol"), std::string::npos);
}

TEST(SpecParseTest, BadValueIsError) {
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nhosts = many\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nrounds = 0\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nformat = xml\n").ok());
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\nsweep = lambda 0,1\n").ok());
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\nsweep = oops.key: 1\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\n[unterminated\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nno_equals_sign\n").ok());
}

TEST(SpecParseTest, MissingProtocolIsError) {
  const auto specs = ParseScenarioFile("hosts = 10\n");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("protocol"), std::string::npos);
}

TEST(SpecParseTest, BadParamValueSurfacesKeyName) {
  const auto specs =
      ParseScenarioFile("protocol = p\nprotocol.lambda = abc\n");
  ASSERT_TRUE(specs.ok());  // stored as string; typed access fails
  const auto lambda = (*specs)[0].ParamDouble("protocol.lambda", 0);
  ASSERT_FALSE(lambda.ok());
  EXPECT_NE(lambda.status().message().find("protocol.lambda"),
            std::string::npos);
}

TEST(SpecParseTest, RecordDefaultsToRmsSeries) {
  const auto specs = ParseScenarioFile("protocol = push-sum\n");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ((*specs)[0].metrics.size(), 1u);
  EXPECT_EQ((*specs)[0].metrics[0].name, "rms");
  EXPECT_TRUE((*specs)[0].metrics[0].arg.empty());
  EXPECT_TRUE((*specs)[0].aggregates.empty());
}

TEST(SpecParseTest, RecordListParsesNamesAndArguments) {
  const auto specs = ParseScenarioFile(
      "protocol = p\n"
      "record = rms, bandwidth, cdf(final_error)\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  const auto& metrics = (*specs)[0].metrics;
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].ToString(), "rms");
  EXPECT_EQ(metrics[1].ToString(), "bandwidth");
  EXPECT_EQ(metrics[2].name, "cdf");
  EXPECT_EQ(metrics[2].arg, "final_error");
  EXPECT_EQ(metrics[2].ToString(), "cdf(final_error)");
}

TEST(SpecParseTest, BadRecordListsAreErrors) {
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nrecord = \n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nrecord = rms,,x\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nrecord = cdf(\n").ok());
  EXPECT_FALSE(ParseScenarioFile("protocol = p\nrecord = cdf()\n").ok());
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\nrecord = rms, rms\n").ok());
  // Duplicate selectors must compare name AND argument.
  EXPECT_TRUE(ParseScenarioFile(
                  "protocol = p\nrecord = cdf(a), cdf(b)\n")
                  .ok());
}

TEST(SpecParseTest, AggregateListParsesAndValidates) {
  const auto specs = ParseScenarioFile(
      "protocol = p\naggregate = mean, stddev, min, max\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ((*specs)[0].aggregates.size(), 4u);
  EXPECT_EQ((*specs)[0].aggregates[0], "mean");
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\naggregate = median\n").ok());
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\naggregate = mean, mean\n").ok());
}

TEST(SpecParseTest, Sweep2ParsesAndValidates) {
  const auto specs = ParseScenarioFile(
      "protocol = p\n"
      "sweep = protocol.lambda: 0, 0.1\n"
      "sweep2 = rounds: 30, 60\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ((*specs)[0].sweep2_key, "rounds");
  ASSERT_EQ((*specs)[0].sweep2_values.size(), 2u);
  EXPECT_DOUBLE_EQ((*specs)[0].sweep2_values[1], 60.0);
  // Cross-field rules (sweep2 without sweep, duplicate keys) are enforced
  // by ValidateExperiment, not the parser — see executor_test.
  EXPECT_FALSE(
      ParseScenarioFile("protocol = p\nsweep2 = oops 1, 2\n").ok());
}

TEST(SpecParseTest, CheckParamsRejectsUnknownSuffix) {
  const auto specs = ParseScenarioFile(
      "protocol = p\nprotocol.lamda = 0.5\n");  // typo'd suffix
  ASSERT_TRUE(specs.ok());
  const Status st =
      (*specs)[0].CheckParams("protocol.", {"lambda", "mode"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("protocol.lamda"), std::string::npos);
  // Other prefixes are not this factory's concern.
  EXPECT_TRUE((*specs)[0].CheckParams("env.", {}).ok());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
