#include "scenario/registry.h"

#include <string>

#include <gtest/gtest.h>

#include "scenario/executor.h"
#include "scenario/spec.h"
#include "scenario/trial.h"

namespace dynagg {
namespace scenario {
namespace {

TEST(RegistryTest, FindMissReturnsNotFoundListingNames) {
  Registry<int> reg("widget");
  ASSERT_TRUE(reg.Register("alpha", 1).ok());
  ASSERT_TRUE(reg.Register("beta", 2).ok());
  const Result<int> miss = reg.Find("gamma");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
  EXPECT_NE(miss.status().message().find("gamma"), std::string::npos);
  EXPECT_NE(miss.status().message().find("alpha"), std::string::npos);
  EXPECT_NE(miss.status().message().find("beta"), std::string::npos);
}

TEST(RegistryTest, DuplicateRegistrationIsError) {
  Registry<int> reg("widget");
  ASSERT_TRUE(reg.Register("alpha", 1).ok());
  const Status st = reg.Register("alpha", 2);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The original registration survives.
  EXPECT_EQ(reg.Find("alpha").value(), 1);
}

TEST(RegistryTest, NamesAreSorted) {
  Registry<int> reg("widget");
  ASSERT_TRUE(reg.Register("zeta", 1).ok());
  ASSERT_TRUE(reg.Register("alpha", 2).ok());
  const std::vector<std::string> names = reg.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(BuiltinRegistryTest, ProtocolCatalogIsComplete) {
  for (const char* name :
       {"push-sum", "push-sum-revert", "epoch-push-sum", "full-transfer",
        "extremes", "count-sketch", "count-sketch-reset", "node-aggregator",
        "tag-tree"}) {
    EXPECT_TRUE(ProtocolRegistry().Find(name).ok()) << name;
  }
}

TEST(BuiltinRegistryTest, EnvironmentCatalogIsComplete) {
  for (const char* name :
       {"uniform", "spatial", "random-graph", "haggle"}) {
    EXPECT_TRUE(EnvironmentRegistry().Find(name).ok()) << name;
  }
}

TEST(BuiltinRegistryTest, UnknownProtocolFailsExperimentCleanly) {
  ScenarioSpec spec;
  spec.protocol = "no-such-protocol";
  spec.hosts = 10;
  const Result<std::vector<ResultTable>> tables = RunExperiment(spec);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("no-such-protocol"),
            std::string::npos);
}

TEST(BuiltinRegistryTest, UnknownEnvironmentFailsExperimentCleanly) {
  ScenarioSpec spec;
  spec.protocol = "push-sum";
  spec.environment = "no-such-env";
  spec.hosts = 10;
  const Result<std::vector<ResultTable>> tables = RunExperiment(spec);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("no-such-env"),
            std::string::npos);
}

// A workload registered from outside the engine becomes runnable from a
// spec without touching the runner: the whole point of the registries.
TEST(BuiltinRegistryTest, CustomProtocolPlugsIntoExecutor) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    ProtocolDef def;
    def.run_custom = [](const TrialContext& ctx, Recorder& rec) -> Status {
      rec.AddScalar("seed_lo", static_cast<double>(ctx.trial_seed % 1000));
      return Status::OK();
    };
    ASSERT_TRUE(ProtocolRegistry().Register("test-constant", def).ok());
  }
  ScenarioSpec spec;
  spec.name = "custom";
  spec.protocol = "test-constant";
  spec.hosts = 1;
  spec.seed = 123456;
  const Result<std::vector<ResultTable>> tables = RunExperiment(spec);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.columns()[0], "seed_lo");
  EXPECT_DOUBLE_EQ(table.row(0)[0], 456.0);
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
