// Driver API v1 tests: spec-level driver validation (the --dry-run
// contract), bit-identical parity of the ported fig10/fig11 scenarios with
// the retired bench mains' loops, event-driven trace execution determinism
// across thread counts, and keyed (per-group) series assembly. The parity
// replicas below are the exact code of the retired mains at reduced scale
// (same RNG streams, same call order).

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/full_transfer.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/connectivity.h"
#include "env/haggle_gen.h"
#include "env/trace_env.h"
#include "env/uniform_env.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/trial.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"

namespace dynagg {
namespace scenario {
namespace {

std::vector<ScenarioSpec> MustParse(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  return *specs;
}

CsvTable MustRunSpec(const ScenarioSpec& spec, int threads) {
  Result<std::vector<ResultTable>> tables = RunExperiment(spec, threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  EXPECT_EQ(tables->size(), 1u);
  return std::move((*tables)[0].table);
}

CsvTable MustRun(const std::string& text, int threads) {
  const std::vector<ScenarioSpec> specs = MustParse(text);
  EXPECT_EQ(specs.size(), 1u);
  return MustRunSpec(specs[0], threads);
}

void ExpectValidateFails(const std::string& text,
                         const std::string& needle) {
  const std::vector<ScenarioSpec> specs = MustParse(text);
  ASSERT_EQ(specs.size(), 1u);
  const Status st = ValidateExperiment(specs[0]);
  ASSERT_FALSE(st.ok()) << "spec unexpectedly valid:\n" << text;
  EXPECT_NE(st.message().find(needle), std::string::npos)
      << "message '" << st.message() << "' lacks '" << needle << "'";
}

// -------------------------------------------- spec-level validation ---

TEST(DriverValidationTest, UnknownDriverListsRegisteredDrivers) {
  ExpectValidateFails(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "driver = warp\n",
      "warp");
  ExpectValidateFails(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "driver = warp\n",
      "rounds");
}

TEST(DriverValidationTest, TraceDriverRequiresTraceEnvironment) {
  ExpectValidateFails(
      "protocol = push-sum-revert\n"
      "hosts = 16\n"
      "driver = trace\n",  // environment defaults to uniform
      "does not provide one");
  ExpectValidateFails(
      "protocol = push-sum-revert\n"
      "hosts = 16\n"
      "driver = trace\n"
      "environment = spatial\n"
      "env.width = 4\n"
      "env.height = 4\n",
      "spatial");
}

TEST(DriverValidationTest, GossipPeriodOnRoundsDriverIsError) {
  ExpectValidateFails(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "gossip_period = 30\n",
      "event-driven drivers (trace, async)");
  ExpectValidateFails(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "sample_period = 3600\n",
      "event-driven drivers (trace, async)");
}

TEST(DriverValidationTest, TraceDriverRejectsWholeTrialProtocols) {
  ExpectValidateFails(
      "protocol = tag-tree\n"
      "driver = trace\n"
      "environment = haggle\n",
      "tag-tree");
}

TEST(DriverValidationTest, TraceDriverRejectsTraceIncapableSwarms) {
  ExpectValidateFails(
      "protocol = node-aggregator\n"
      "driver = trace\n"
      "environment = haggle\n",
      "node-aggregator");
}

TEST(DriverValidationTest, TraceDriverRejectsExplicitRounds) {
  // The trace horizon governs the run length; a declared rounds count
  // would silently run a different length than written.
  ExpectValidateFails(
      "protocol = push-sum-revert\n"
      "driver = trace\n"
      "environment = haggle\n"
      "rounds = 100\n",
      "trace horizon");
  ExpectValidateFails(
      "protocol = push-sum-revert\n"
      "driver = trace\n"
      "environment = haggle\n"
      "sweep = rounds: 10, 20\n",
      "trace horizon");
}

TEST(DriverValidationTest, TraceDriverRejectsEnvGossipSeconds) {
  const std::vector<ScenarioSpec> specs = MustParse(
      "protocol = push-sum-revert\n"
      "driver = trace\n"
      "environment = haggle\n"
      "env.hours = 1\n"
      "env.gossip_seconds = 60\n");  // dead under trace: gossip_period rules
  ASSERT_EQ(specs.size(), 1u);
  const Result<std::vector<ResultTable>> tables =
      RunExperiment(specs[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("gossip_period"),
            std::string::npos);
}

TEST(DriverValidationTest, TraceDriverRejectsZeroMultiplicity) {
  const std::vector<ScenarioSpec> specs = MustParse(
      "protocol = count-sketch-reset\n"
      "protocol.multiplicity = 0\n"
      "driver = trace\n"
      "environment = haggle\n"
      "env.hours = 1\n");
  ASSERT_EQ(specs.size(), 1u);
  const Result<std::vector<ResultTable>> tables =
      RunExperiment(specs[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("multiplicity"),
            std::string::npos);
}

TEST(DriverValidationTest, SweepRoundStreamRequiresSweep) {
  const std::vector<ScenarioSpec> specs = MustParse(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 3\n"
      "seeds.round_stream = sweep+10\n");
  ASSERT_EQ(specs.size(), 1u);
  const Result<std::vector<ResultTable>> tables =
      RunExperiment(specs[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("requires a sweep"),
            std::string::npos);
}

TEST(DriverValidationTest, TraceDriverRejectsFailurePlans) {
  const std::vector<ScenarioSpec> specs = MustParse(
      "protocol = push-sum-revert\n"
      "driver = trace\n"
      "environment = haggle\n"
      "env.hours = 1\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.1\n");
  ASSERT_EQ(specs.size(), 1u);
  const Result<std::vector<ResultTable>> tables =
      RunExperiment(specs[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("failure."), std::string::npos);
}

TEST(DriverValidationTest, TraceDriverRejectsRoundsMetrics) {
  const std::vector<ScenarioSpec> specs = MustParse(
      "protocol = push-sum-revert\n"
      "driver = trace\n"
      "environment = haggle\n"
      "env.hours = 1\n"
      "record = bandwidth\n");
  ASSERT_EQ(specs.size(), 1u);
  const Result<std::vector<ResultTable>> tables =
      RunExperiment(specs[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("bandwidth"), std::string::npos);
  EXPECT_NE(tables.status().message().find("avg_group_size"),
            std::string::npos);
}

// ----------------------------------------- parity: fig10 correlated ---

TEST(DriverParityTest, Fig10SeriesMatchLegacyLoopForBothPanels) {
  const int n = 300;
  const int rounds = 25;
  const int fail_round = 8;
  const uint64_t seed = 20090402;
  const std::vector<double> lambdas = {0.0, 0.1};

  // Hand-rolled replica of bench/fig10_correlated.cc RunSeries() for both
  // panels: expected[panel] rows of (lambda, round, rms).
  const std::vector<double> values = UniformWorkloadValues(n, seed);
  std::vector<std::vector<std::vector<double>>> expected(2);
  for (const double lambda : lambdas) {
    PushSumRevertSwarm basic(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    FullTransferSwarm ft(values,
                         {.lambda = lambda, .parcels = 4, .window = 3});
    const auto run_series = [&](auto& swarm, int panel) {
      UniformEnvironment env(n);
      Population pop(n);
      Rng rng(DeriveSeed(seed, 1));
      const FailurePlan failures =
          FailurePlan::KillTopFraction(values, fail_round, 0.5);
      RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
        const double truth = TrueAverage(values, pop);
        const double rms = RmsDeviationOverAlive(
            pop, truth, [&](HostId id) { return swarm.Estimate(id); });
        expected[panel].push_back(
            {lambda, static_cast<double>(round + 1), rms});
      });
    };
    run_series(basic, 0);
    run_series(ft, 1);
  }

  // The two-section scenario structure of fig10_correlated.scenario at
  // reduced scale.
  const std::vector<ScenarioSpec> specs = MustParse(
      "name = fig10_small\n"
      "seed = 20090402\n"
      "hosts = 300\n"
      "rounds = 25\n"
      "sweep = protocol.lambda: 0, 0.1\n"
      "failure.kind = kill_top_fraction\n"
      "failure.round = 8\n"
      "failure.fraction = 0.5\n"
      "record = rms\n"
      "\n"
      "[basic]\n"
      "protocol = push-sum-revert\n"
      "\n"
      "[full_transfer]\n"
      "protocol = full-transfer\n"
      "protocol.parcels = 4\n"
      "protocol.window = 3\n");
  ASSERT_EQ(specs.size(), 2u);
  for (int panel = 0; panel < 2; ++panel) {
    const CsvTable table = MustRunSpec(specs[panel], 4);
    ASSERT_EQ(table.num_rows(),
              static_cast<int64_t>(expected[panel].size()))
        << "panel " << panel;
    for (int64_t i = 0; i < table.num_rows(); ++i) {
      ASSERT_EQ(table.row(i).size(), 3u);
      EXPECT_EQ(table.row(i)[0], expected[panel][i][0]) << "row " << i;
      EXPECT_EQ(table.row(i)[1], expected[panel][i][1]) << "row " << i;
      // Bit-identical: the engine must replay the exact RNG stream layout
      // of the legacy bench.
      EXPECT_EQ(table.row(i)[2], expected[panel][i][2])
          << "panel " << panel << " row " << i;
    }
  }
}

// -------------------------------------------- parity: fig11 haggle ---

struct HourlyRow {
  double hour;
  double avg_group_size;
  double rms;
};

/// Replica of bench/fig11_haggle.cc RunTraceSeries(): the legacy
/// advance/gossip/sample loop at 30-second gossip and hourly samples.
template <typename RoundFn, typename TruthFn, typename EstimateFn>
std::vector<HourlyRow> LegacyTraceSeries(const ContactTrace& trace,
                                         TraceEnvironment& env,
                                         Population& pop,
                                         const RoundFn& round_fn,
                                         const TruthFn& truth_of,
                                         const EstimateFn& estimate_of) {
  std::vector<HourlyRow> rows;
  const SimTime period = FromSeconds(30);
  int round = 0;
  for (SimTime t = period; t <= trace.end_time(); t += period, ++round) {
    env.AdvanceTo(t);
    round_fn();
    if ((round + 1) % 120 != 0) continue;  // hourly samples
    DeviationStat dev;
    for (const HostId id : pop.alive_ids()) {
      dev.Add(estimate_of(id), truth_of(id));
    }
    rows.push_back(HourlyRow{ToHours(t), env.AverageGroupSize(), dev.rms()});
  }
  return rows;
}

TEST(DriverParityTest, Fig11AverageMatchesLegacyLoopPerLambda) {
  const uint64_t seed = 20090405;
  HaggleGenParams params = HaggleDataset1();
  params.duration_hours = 6;  // reduced scale; the preset seed is kept
  const ContactTrace trace = GenerateHaggleTrace(params);
  const int n = trace.num_devices();
  const std::vector<double> values = UniformWorkloadValues(n, seed);

  // Replica of the fig11 dynamic-average loop: per-series RNG stream
  // 10 + series, truth = the device's current group average.
  const std::vector<double> lambdas = {0.0, 0.01};
  std::vector<std::vector<HourlyRow>> expected;
  for (size_t series = 0; series < lambdas.size(); ++series) {
    TraceEnvironment env(trace);
    Population pop(n);
    PushSumRevertSwarm swarm(values, {.lambda = lambdas[series],
                                      .mode = GossipMode::kPushPull});
    Rng rng(DeriveSeed(seed, 10 + series));
    std::vector<int> labels;
    std::vector<double> truths;
    expected.push_back(LegacyTraceSeries(
        trace, env, pop,
        [&] {
          swarm.RunRound(env, pop, rng);
          labels = env.CurrentGroups();
          truths = GroupMeans(labels, ComponentSizes(labels), values);
        },
        [&](HostId id) { return truths[labels[id]]; },
        [&](HostId id) { return swarm.Estimate(id); }));
  }

  const CsvTable table = MustRun(
      "name = fig11_avg_small\n"
      "driver = trace\n"
      "protocol = push-sum-revert\n"
      "environment = haggle\n"
      "env.dataset = 1\n"
      "env.hours = 6\n"
      "env.trace_seed = preset\n"
      "seed = 20090405\n"
      "gossip_period = 30\n"
      "sample_period = 3600\n"
      "sweep = protocol.lambda: 0, 0.01\n"
      "seeds.round_stream = sweep+10\n"
      "record = rms, avg_group_size\n",
      2);
  // Columns: lambda, hour, rms, avg_group_size.
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[0], "lambda");
  EXPECT_EQ(table.columns()[1], "hour");
  EXPECT_EQ(table.columns()[2], "rms");
  EXPECT_EQ(table.columns()[3], "avg_group_size");
  int64_t row = 0;
  for (size_t series = 0; series < lambdas.size(); ++series) {
    ASSERT_FALSE(expected[series].empty());
    for (const HourlyRow& exp : expected[series]) {
      ASSERT_LT(row, table.num_rows());
      EXPECT_EQ(table.row(row)[0], lambdas[series]) << "row " << row;
      EXPECT_EQ(table.row(row)[1], exp.hour) << "row " << row;
      // Bit-identical: same trace, same RNG stream, same group labelling,
      // same accumulation order.
      EXPECT_EQ(table.row(row)[2], exp.rms) << "row " << row;
      EXPECT_EQ(table.row(row)[3], exp.avg_group_size) << "row " << row;
      ++row;
    }
  }
  EXPECT_EQ(row, table.num_rows());
}

TEST(DriverParityTest, Fig11SizeMatchesLegacyLoop) {
  const uint64_t seed = 20090405;
  const int64_t kIdsPerDevice = 100;
  HaggleGenParams params = HaggleDataset1();
  params.duration_hours = 6;
  const ContactTrace trace = GenerateHaggleTrace(params);
  const int n = trace.num_devices();

  // Replica of the fig11 dynamic-size loop, series 0 (reversion off):
  // RNG stream 20, truth = the device's current group size.
  CsrParams csr;
  csr.cutoff_enabled = false;
  TraceEnvironment env(trace);
  Population pop(n);
  CsrSwarm swarm(std::vector<int64_t>(n, kIdsPerDevice), csr);
  Rng rng(DeriveSeed(seed, 20));
  std::vector<int> labels;
  std::vector<int> sizes;
  const std::vector<HourlyRow> expected = LegacyTraceSeries(
      trace, env, pop,
      [&] {
        swarm.RunRound(env, pop, rng);
        labels = env.CurrentGroups();
        sizes = ComponentSizes(labels);
      },
      [&](HostId id) { return static_cast<double>(sizes[labels[id]]); },
      [&](HostId id) {
        return swarm.EstimateCount(id) / static_cast<double>(kIdsPerDevice);
      });
  ASSERT_FALSE(expected.empty());

  const CsvTable table = MustRun(
      "name = fig11_size_small\n"
      "driver = trace\n"
      "protocol = count-sketch-reset\n"
      "protocol.multiplicity = 100\n"
      "protocol.cutoff_enabled = false\n"
      "environment = haggle\n"
      "env.dataset = 1\n"
      "env.hours = 6\n"
      "env.trace_seed = preset\n"
      "seed = 20090405\n"
      "seeds.round_stream = 20\n"
      "record = rms, avg_group_size\n",
      1);
  ASSERT_EQ(table.num_rows(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(table.row(i)[0], expected[i].hour) << "row " << i;
    EXPECT_EQ(table.row(i)[1], expected[i].rms) << "row " << i;
    EXPECT_EQ(table.row(i)[2], expected[i].avg_group_size) << "row " << i;
  }
}

// ------------------------------------------- trace determinism ---

TEST(DriverDeterminismTest, TraceDriverIsByteIdenticalAcrossThreadCounts) {
  const char* text =
      "name = trace_det\n"
      "driver = trace\n"
      "protocol = push-sum-revert\n"
      "protocol.lambda = 0.01\n"
      "environment = haggle\n"
      "env.dataset = 1\n"
      "env.hours = 3\n"
      "trials = 2\n"
      "sweep = protocol.lambda: 0, 0.01\n"
      "seed = 99\n"
      "record = rms, avg_group_size\n";
  const auto render = [&](int threads) {
    const std::vector<ScenarioSpec> specs = MustParse(text);
    EXPECT_EQ(specs.size(), 1u);
    Result<std::vector<ResultTable>> tables =
        RunExperiment(specs[0], threads);
    EXPECT_TRUE(tables.ok()) << tables.status().ToString();
    Result<std::string> out = RenderTables(*tables, "trace_det", "csv");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return *out;
  };
  const std::string serial = render(1);
  const std::string parallel = render(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("rms"), std::string::npos);
}

// Trials with derived (non-preset) trace seeds see different traces.
TEST(DriverDeterminismTest, DerivedTraceSeedsDecorrelateTrials) {
  // 24 trace hours: the synthetic gathering process is nocturnal-quiet
  // (day starts at hour 8), so the window must reach daytime for group
  // sizes to move at all.
  const CsvTable table = MustRun(
      "name = trace_trials\n"
      "driver = trace\n"
      "protocol = push-sum-revert\n"
      "environment = haggle\n"
      "env.dataset = 1\n"
      "env.hours = 24\n"
      "trials = 2\n"
      "seed = 5\n"
      "record = avg_group_size\n",
      2);
  // Columns: trial, hour, avg_group_size. Different traces make some
  // hourly group-size sample differ between the trials.
  ASSERT_EQ(table.columns().size(), 3u);
  ASSERT_EQ(table.num_rows() % 2, 0);
  const int64_t half = table.num_rows() / 2;
  bool any_diff = false;
  for (int64_t i = 0; i < half; ++i) {
    any_diff = any_diff || table.row(i)[2] != table.row(half + i)[2];
  }
  EXPECT_TRUE(any_diff);
}

// --------------------------------------------- keyed series assembly ---

void RegisterKeyedTestProtocol() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  ProtocolDef def;
  def.run_custom = [](const TrialContext& ctx, Recorder& rec) -> Status {
    // Two key groups x two value columns x three points, deterministic in
    // the trial seed so aggregation is checkable.
    const double bump = static_cast<double>(ctx.trial_seed % 7);
    for (const double key : {0.25, 0.5}) {
      for (int x = 1; x <= 3; ++x) {
        rec.AddKeyedSeriesPoint("round", "rms", "lam", key, x,
                                key * x + bump);
        rec.AddKeyedSeriesPoint("round", "size", "lam", key, x, key + x);
      }
    }
    return Status::OK();
  };
  ASSERT_TRUE(ProtocolRegistry().Register("test-keyed-series", def).ok());
}

TEST(KeyedSeriesTest, GroupsRenderKeyMajorWithKeyColumn) {
  RegisterKeyedTestProtocol();
  const CsvTable table = MustRun(
      "name = keyed\n"
      "protocol = test-keyed-series\n"
      "hosts = 1\n"
      "seed = 3\n",
      1);
  // Columns: lam, round, rms, size; rows key-major then x.
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[0], "lam");
  EXPECT_EQ(table.columns()[1], "round");
  EXPECT_EQ(table.columns()[2], "rms");
  EXPECT_EQ(table.columns()[3], "size");
  ASSERT_EQ(table.num_rows(), 6);
  const double bump = 3 % 7;  // trial 0 replays the base seed
  int64_t row = 0;
  for (const double key : {0.25, 0.5}) {
    for (int x = 1; x <= 3; ++x, ++row) {
      EXPECT_EQ(table.row(row)[0], key);
      EXPECT_EQ(table.row(row)[1], static_cast<double>(x));
      EXPECT_EQ(table.row(row)[2], key * x + bump);
      EXPECT_EQ(table.row(row)[3], key + x);
    }
  }
}

TEST(KeyedSeriesTest, AggregationMatchesGroupsAcrossTrials) {
  RegisterKeyedTestProtocol();
  const char* text =
      "name = keyed_agg\n"
      "protocol = test-keyed-series\n"
      "hosts = 1\n"
      "trials = 3\n"
      "seed = 11\n"
      "aggregate = mean, min\n";
  const CsvTable table = MustRun(text, 3);
  // Columns: lam, round, rms_mean, rms_min, size_mean, size_min.
  ASSERT_EQ(table.columns().size(), 6u);
  EXPECT_EQ(table.columns()[2], "rms_mean");
  EXPECT_EQ(table.columns()[5], "size_min");
  ASSERT_EQ(table.num_rows(), 6);
  // The size column is trial-independent, so mean == min exactly.
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(table.row(i)[4], table.row(i)[5]);
  }
  // Cross-check one aggregated cell against the raw per-trial values.
  RunningStat stat;
  for (const int t : {0, 1, 2}) {
    const uint64_t trial_seed = TrialSeed(11, t);
    stat.Add(0.25 * 1 + static_cast<double>(trial_seed % 7));
  }
  EXPECT_EQ(table.row(0)[2], stat.mean());
  EXPECT_EQ(table.row(0)[3], stat.min());
}

TEST(KeyedSeriesTest, KeyedAssemblyIsDeterministicAcrossThreads) {
  RegisterKeyedTestProtocol();
  const char* text =
      "name = keyed_det\n"
      "protocol = test-keyed-series\n"
      "hosts = 1\n"
      "trials = 4\n"
      "seed = 17\n";
  const CsvTable serial = MustRun(text, 1);
  const CsvTable parallel = MustRun(text, 4);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
