// Executor tests: thread-count determinism and numeric parity with the
// hand-rolled bench loops the scenario engine replaces. The parity tests
// replicate the exact code of the legacy bench mains (same RNG streams,
// same call order) at reduced scale and demand bit-identical metrics.

#include "scenario/executor.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "scenario/spec.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

// The parity replicas must generate the exact populations the engine does.
std::vector<double> UniformValues(int n, uint64_t seed) {
  return UniformWorkloadValues(n, seed);
}

CsvTable MustRun(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  Result<CsvTable> table = RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return std::move(table).value();
}

// ------------------------------------------------------------ determinism ---

TEST(ExecutorTest, ParallelExecutionIsDeterministic) {
  const char* text =
      "name = det\n"
      "protocol = push-sum-revert\n"
      "hosts = 128\n"
      "rounds = 30\n"
      "trials = 3\n"
      "seed = 99\n"
      "sweep = protocol.lambda: 0, 0.01, 0.1\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.01\n"
      "record.kind = per_round\n";
  const CsvTable serial = MustRun(text, 1);
  const CsvTable parallel = MustRun(text, 8);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
  // 3 sweep values x 3 trials x 30 recorded rounds.
  EXPECT_EQ(serial.num_rows(), 3 * 3 * 30);
}

TEST(ExecutorTest, TrialsAreDecorrelatedButTrialZeroReplaysBaseSeed) {
  const char* text =
      "name = trials\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 5\n"
      "trials = 2\n"
      "seed = 1234\n";
  const CsvTable table = MustRun(text, 2);
  // Columns: trial, round, rms. Trial 0 and 1 see different populations,
  // so their round-1 deviations differ.
  ASSERT_EQ(table.num_rows(), 2 * 5);
  EXPECT_EQ(table.columns()[0], "trial");
  EXPECT_NE(table.row(0)[2], table.row(5)[2]);
}

// ------------------------------------------------- parity: fig08 logic ---

TEST(ExecutorParityTest, PerRoundRmsMatchesLegacyFig08Loop) {
  const int n = 256;
  const int rounds = 25;
  const int fail_round = 8;
  const uint64_t seed = 4242;
  const std::vector<double> lambdas = {0.0, 0.1};

  // Hand-rolled replica of bench/fig08_uncorrelated.cc Run().
  std::vector<std::vector<double>> expected;  // lambda, round, rms
  const std::vector<double> values = UniformValues(n, seed);
  for (const double lambda : lambdas) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    Rng fail_rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, fail_round, 0.5, fail_rng);
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = TrueAverage(values, pop);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      expected.push_back({lambda, static_cast<double>(round + 1), rms});
    });
  }

  const CsvTable table = MustRun(
      "name = fig08_small\n"
      "protocol = push-sum-revert\n"
      "hosts = 256\n"
      "rounds = 25\n"
      "seed = 4242\n"
      "sweep = protocol.lambda: 0, 0.1\n"
      "failure.kind = kill_random_fraction\n"
      "failure.round = 8\n"
      "failure.fraction = 0.5\n",
      4);
  ASSERT_EQ(table.num_rows(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    ASSERT_EQ(table.row(i).size(), 3u);
    EXPECT_EQ(table.row(i)[0], expected[i][0]) << "row " << i;
    EXPECT_EQ(table.row(i)[1], expected[i][1]) << "row " << i;
    // Bit-identical, not approximately equal: the engine must replay the
    // exact RNG stream layout of the legacy bench.
    EXPECT_EQ(table.row(i)[2], expected[i][2]) << "row " << i;
  }
}

// ------------------------- parity: tree_vs_gossip churn + pin + tail ---

TEST(ExecutorParityTest, TailMeanUnderChurnMatchesLegacyAblationLoop) {
  const int side = 8;
  const int n = side * side;
  const int rounds = 60;
  const uint64_t seed = 20090414;
  const std::vector<double> death_probs = {0.0, 0.02};

  std::vector<double> expected;  // one tail mean per death_prob
  const std::vector<double> values = UniformValues(n, seed);
  for (const double death_prob : death_probs) {
    SpatialGridEnvironment env(side, side);
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.05, .mode = GossipMode::kPushPull});
    Population pop(n);
    Rng rng(DeriveSeed(seed, 77));
    Rng churn_rng(DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
    const FailurePlan churn = FailurePlan::Churn(
        n, 0, rounds, death_prob, death_prob * 4, churn_rng);
    RunningStat tail;
    for (int r = 0; r < rounds; ++r) {
      churn.Apply(r, &pop);
      pop.Revive(0);
      swarm.RunRound(env, pop, rng);
      if (r >= 30) {
        tail.Add(RmsDeviationOverAlive(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      }
    }
    expected.push_back(tail.mean());
  }

  const CsvTable table = MustRun(
      "name = tvg_small\n"
      "protocol = push-sum-revert\n"
      "protocol.lambda = 0.05\n"
      "environment = spatial\n"
      "env.width = 8\n"
      "env.height = 8\n"
      "hosts = 64\n"
      "rounds = 60\n"
      "seed = 20090414\n"
      "sweep = failure.death_prob: 0, 0.02\n"
      "failure.kind = churn\n"
      "failure.return_factor = 4\n"
      "failure.pin_alive = 0\n"
      "seeds.round_stream = 77\n"
      "record.kind = tail_mean\n"
      "record.from = 30\n",
      2);
  ASSERT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.row(0)[1], expected[0]);
  EXPECT_EQ(table.row(1)[1], expected[1]);
}

TEST(ExecutorParityTest, TagTreeMatchesLegacyAblationLoop) {
  const int side = 8;
  const int n = side * side;
  const int epochs = 8;
  const uint64_t seed = 20090414;
  const double death_prob = 0.01;

  // Hand-rolled replica of the TAG half of ablation_tree_vs_gossip.cc.
  const std::vector<double> values = UniformValues(n, seed);
  SpatialGridEnvironment env(side, side);
  Rng churn_rng(DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
  RunningStat err;
  int failed_epochs = 0;
  Population pop(n);
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(env, pop, /*root=*/0);
    const FailurePlan churn = FailurePlan::Churn(
        n, round, round + tree.max_depth + 1, death_prob, death_prob * 4,
        churn_rng);
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    pop.Revive(0);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    err.Add(std::abs(result.average - TrueAverage(values, pop)));
  }

  const CsvTable table = MustRun(
      "name = tag_small\n"
      "protocol = tag-tree\n"
      "protocol.epochs = 8\n"
      "environment = spatial\n"
      "env.width = 8\n"
      "env.height = 8\n"
      "hosts = 64\n"
      "seed = 20090414\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.01\n"
      "failure.return_factor = 4\n",
      1);
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], err.mean());
  EXPECT_EQ(table.row(0)[1], 100.0 * failed_epochs / epochs);
}

// ------------------------------------------- parity: convergence kind ---

TEST(ExecutorParityTest, ConvergenceRoundMatchesLegacyTabLoop) {
  const int n = 500;
  const uint64_t seed = 20090406;

  // Hand-rolled replica of tab_convergence.cc PushSumRounds().
  const std::vector<double> values = UniformValues(n, seed);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 3));
  const double truth = TrueAverage(values, pop);
  int expected = -1;
  for (int round = 0; round < 200; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    if (rms < 1.0) {
      expected = round + 1;
      break;
    }
  }
  ASSERT_GT(expected, 0);

  const CsvTable table = MustRun(
      "name = conv_small\n"
      "protocol = push-sum\n"
      "hosts = 500\n"
      "rounds = 200\n"
      "seed = 20090406\n"
      "seeds.round_stream = 3\n"
      "record.kind = convergence\n"
      "record.threshold = 1.0\n",
      1);
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], static_cast<double>(expected));
}

// ------------------------------------------------------------- errors ---

TEST(ExecutorTest, BadProtocolParamSurfacesKeyInError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum-revert\n"
      "hosts = 16\n"
      "protocol.lambda = not_a_number\n");
  ASSERT_TRUE(specs.ok());
  const Result<CsvTable> table = RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("protocol.lambda"),
            std::string::npos);
}

TEST(ExecutorTest, UnknownParamSuffixSurfacesInError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "protocol.lamda = 0.5\n");  // typo
  ASSERT_TRUE(specs.ok());
  const Result<CsvTable> table = RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("protocol.lamda"),
            std::string::npos);
}

TEST(ExecutorTest, TailMeanWithEmptyWindowIsError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 10\n"
      "record.kind = tail_mean\n"
      "record.from = 10\n");
  ASSERT_TRUE(specs.ok());
  const Result<CsvTable> table = RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("record.from"),
            std::string::npos);
}

TEST(ExecutorTest, MissingHostsForUniformEnvIsError) {
  const auto specs = ParseScenarioFile("protocol = push-sum\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_FALSE(RunExperiment((*specs)[0], 1).ok());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
