// Executor tests: thread-count determinism (including multi-metric,
// aggregated, 2-D-swept experiments) and numeric parity with the
// hand-rolled bench loops the scenario engine replaces. The parity tests
// replicate the exact code of the legacy bench mains (same RNG streams,
// same call order) at reduced scale and demand bit-identical metrics.

#include "scenario/executor.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

// The parity replicas must generate the exact populations the engine does.
std::vector<double> UniformValues(int n, uint64_t seed) {
  return UniformWorkloadValues(n, seed);
}

std::vector<ResultTable> MustRunAll(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  return std::move(tables).value();
}

CsvTable MustRun(const std::string& text, int threads) {
  std::vector<ResultTable> tables = MustRunAll(text, threads);
  EXPECT_EQ(tables.size(), 1u);
  return std::move(tables[0].table);
}

/// Renders all tables of an experiment (determinism comparisons).
std::string MustRender(const std::string& text, int threads,
                       const std::string& format) {
  const std::vector<ResultTable> tables = MustRunAll(text, threads);
  Result<std::string> out = RenderTables(tables, "det", format);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

// ------------------------------------------------------------ determinism ---

TEST(ExecutorTest, ParallelExecutionIsDeterministic) {
  const char* text =
      "name = det\n"
      "protocol = push-sum-revert\n"
      "hosts = 128\n"
      "rounds = 30\n"
      "trials = 3\n"
      "seed = 99\n"
      "sweep = protocol.lambda: 0, 0.01, 0.1\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.01\n"
      "record = rms\n";
  const CsvTable serial = MustRun(text, 1);
  const CsvTable parallel = MustRun(text, 8);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
  // 3 sweep values x 3 trials x 30 recorded rounds.
  EXPECT_EQ(serial.num_rows(), 3 * 3 * 30);
}

// The acceptance bar of the Recorder redesign: a multi-metric experiment
// with cross-trial aggregation and a second sweep axis must stay a pure
// function of the spec — byte-identical rendered output at 1 and N
// executor threads, in both formats.
TEST(ExecutorTest, MultiMetricAggregateSweep2IsByteIdenticalAcrossThreads) {
  const char* text =
      "name = det2d\n"
      "protocol = push-sum-revert\n"
      "hosts = 96\n"
      "trials = 3\n"
      "seed = 777\n"
      "sweep = protocol.lambda: 0.01, 0.1\n"
      "sweep2 = rounds: 10, 20\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.02\n"
      "record = rms, rms_tail_mean, bandwidth, cdf(final_error)\n"
      "record.cdf_hi = 60\n"
      "record.cdf_buckets = 6\n"
      "aggregate = mean, stddev\n";
  const std::string csv1 = MustRender(text, 1, "csv");
  const std::string csv8 = MustRender(text, 8, "csv");
  EXPECT_EQ(csv1, csv8);
  const std::string jsonl1 = MustRender(text, 1, "jsonl");
  const std::string jsonl8 = MustRender(text, 8, "jsonl");
  EXPECT_EQ(jsonl1, jsonl8);
  EXPECT_NE(csv1.find("# record: summary"), std::string::npos);
  EXPECT_NE(csv1.find("# record: series"), std::string::npos);
  EXPECT_NE(csv1.find("# record: final_error_cdf"), std::string::npos);
}

// Regression: a unit whose recording window is empty (record.from >= its
// rounds under a rounds sweep) must still carry the rms series so batches
// stay structurally identical — it contributes zero rows, not a failure.
TEST(ExecutorTest, EmptyRecordingWindowContributesZeroSeriesRows) {
  const CsvTable table = MustRun(
      "name = empty_window\n"
      "protocol = push-sum-revert\n"
      "hosts = 32\n"
      "seed = 4\n"
      "sweep = protocol.lambda: 0, 0.01\n"
      "sweep2 = rounds: 5, 20\n"
      "record = rms\n"
      "record.from = 10\n",
      2);
  // Only the rounds=20 units produce points (rounds 11..20).
  ASSERT_EQ(table.num_rows(), 2 * 10);
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(table.row(i)[1], 20.0) << "row " << i;  // rounds axis
  }
}

TEST(ExecutorTest, TrialsAreDecorrelatedButTrialZeroReplaysBaseSeed) {
  const char* text =
      "name = trials\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 5\n"
      "trials = 2\n"
      "seed = 1234\n";
  const CsvTable table = MustRun(text, 2);
  // Columns: trial, round, rms. Trial 0 and 1 see different populations,
  // so their round-1 deviations differ.
  ASSERT_EQ(table.num_rows(), 2 * 5);
  EXPECT_EQ(table.columns()[0], "trial");
  EXPECT_NE(table.row(0)[2], table.row(5)[2]);
}

// ---------------------------------------------------- multi-metric merge ---

TEST(ExecutorTest, MultiMetricSingleTrialProducesSummaryAndSeries) {
  const std::vector<ResultTable> tables = MustRunAll(
      "name = multi\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 8\n"
      "seed = 5\n"
      "record = rms, rms_tail_mean, bandwidth\n",
      2);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].label, "summary");
  const CsvTable& summary = tables[0].table;
  ASSERT_EQ(summary.columns().size(), 4u);
  EXPECT_EQ(summary.columns()[0], "rms_tail_mean");
  EXPECT_EQ(summary.columns()[1], "msgs_per_host_round");
  EXPECT_EQ(summary.columns()[2], "bytes_per_host_round");
  EXPECT_EQ(summary.columns()[3], "state_bytes");
  ASSERT_EQ(summary.num_rows(), 1);
  // Push/pull gossip: every host initiates one exchange of 2 mass
  // messages, 16 bytes each.
  EXPECT_EQ(summary.row(0)[1], 2.0);
  EXPECT_EQ(summary.row(0)[2], 32.0);
  EXPECT_EQ(summary.row(0)[3], 16.0);

  EXPECT_EQ(tables[1].label, "series");
  const CsvTable& series = tables[1].table;
  ASSERT_EQ(series.columns().size(), 2u);
  EXPECT_EQ(series.columns()[0], "round");
  EXPECT_EQ(series.columns()[1], "rms");
  EXPECT_EQ(series.num_rows(), 8);
}

TEST(ExecutorTest, AggregateCollapsesTrialsIntoStatisticsColumns) {
  const CsvTable table = MustRun(
      "name = agg\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 6\n"
      "trials = 4\n"
      "seed = 31\n"
      "record = rms_tail_mean\n"
      "record.from = 3\n"
      "aggregate = mean, stddev, min, max\n",
      3);
  ASSERT_EQ(table.columns().size(), 4u);
  EXPECT_EQ(table.columns()[0], "rms_tail_mean_mean");
  EXPECT_EQ(table.columns()[1], "rms_tail_mean_stddev");
  EXPECT_EQ(table.columns()[2], "rms_tail_mean_min");
  EXPECT_EQ(table.columns()[3], "rms_tail_mean_max");
  ASSERT_EQ(table.num_rows(), 1);
  const std::vector<double>& row = table.row(0);
  EXPECT_GE(row[3], row[2]);              // max >= min
  EXPECT_GE(row[0], row[2]);              // mean within [min, max]
  EXPECT_LE(row[0], row[3]);
  EXPECT_GE(row[1], 0.0);                 // stddev >= 0

  // Cross-check against running the trials unaggregated.
  const CsvTable raw = MustRun(
      "name = agg\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 6\n"
      "trials = 4\n"
      "seed = 31\n"
      "record = rms_tail_mean\n"
      "record.from = 3\n",
      3);
  ASSERT_EQ(raw.num_rows(), 4);
  RunningStat stat;
  for (int64_t i = 0; i < raw.num_rows(); ++i) stat.Add(raw.row(i)[1]);
  EXPECT_EQ(row[0], stat.mean());
  EXPECT_EQ(row[1], std::sqrt(stat.sample_variance()));
  EXPECT_EQ(row[2], stat.min());
  EXPECT_EQ(row[3], stat.max());
}

TEST(ExecutorTest, Sweep2ProducesCrossProductInSweepMajorOrder) {
  const CsvTable table = MustRun(
      "name = grid\n"
      "protocol = push-sum-revert\n"
      "hosts = 32\n"
      "seed = 9\n"
      "sweep = protocol.lambda: 0.01, 0.1\n"
      "sweep2 = rounds: 2, 3\n"
      "record = rms_tail_mean\n",
      4);
  ASSERT_EQ(table.columns().size(), 3u);
  EXPECT_EQ(table.columns()[0], "lambda");
  EXPECT_EQ(table.columns()[1], "rounds");
  EXPECT_EQ(table.columns()[2], "rms_tail_mean");
  ASSERT_EQ(table.num_rows(), 4);
  // Sweep-major, sweep2 inner.
  EXPECT_EQ(table.row(0)[0], 0.01);
  EXPECT_EQ(table.row(0)[1], 2.0);
  EXPECT_EQ(table.row(1)[0], 0.01);
  EXPECT_EQ(table.row(1)[1], 3.0);
  EXPECT_EQ(table.row(2)[0], 0.1);
  EXPECT_EQ(table.row(2)[1], 2.0);
  EXPECT_EQ(table.row(3)[0], 0.1);
  EXPECT_EQ(table.row(3)[1], 3.0);
}

// ------------------------------------------------- parity: fig08 logic ---

TEST(ExecutorParityTest, PerRoundRmsMatchesLegacyFig08Loop) {
  const int n = 256;
  const int rounds = 25;
  const int fail_round = 8;
  const uint64_t seed = 4242;
  const std::vector<double> lambdas = {0.0, 0.1};

  // Hand-rolled replica of bench/fig08_uncorrelated.cc Run().
  std::vector<std::vector<double>> expected;  // lambda, round, rms
  const std::vector<double> values = UniformValues(n, seed);
  for (const double lambda : lambdas) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    Rng fail_rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, fail_round, 0.5, fail_rng);
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = TrueAverage(values, pop);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      expected.push_back({lambda, static_cast<double>(round + 1), rms});
    });
  }

  const CsvTable table = MustRun(
      "name = fig08_small\n"
      "protocol = push-sum-revert\n"
      "hosts = 256\n"
      "rounds = 25\n"
      "seed = 4242\n"
      "sweep = protocol.lambda: 0, 0.1\n"
      "failure.kind = kill_random_fraction\n"
      "failure.round = 8\n"
      "failure.fraction = 0.5\n",
      4);
  ASSERT_EQ(table.num_rows(), static_cast<int64_t>(expected.size()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    ASSERT_EQ(table.row(i).size(), 3u);
    EXPECT_EQ(table.row(i)[0], expected[i][0]) << "row " << i;
    EXPECT_EQ(table.row(i)[1], expected[i][1]) << "row " << i;
    // Bit-identical, not approximately equal: the engine must replay the
    // exact RNG stream layout of the legacy bench.
    EXPECT_EQ(table.row(i)[2], expected[i][2]) << "row " << i;
  }
}

// ------------------------- parity: tree_vs_gossip churn + pin + tail ---

TEST(ExecutorParityTest, TailMeanUnderChurnMatchesLegacyAblationLoop) {
  const int side = 8;
  const int n = side * side;
  const int rounds = 60;
  const uint64_t seed = 20090414;
  const std::vector<double> death_probs = {0.0, 0.02};

  std::vector<double> expected;  // one tail mean per death_prob
  const std::vector<double> values = UniformValues(n, seed);
  for (const double death_prob : death_probs) {
    SpatialGridEnvironment env(side, side);
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.05, .mode = GossipMode::kPushPull});
    Population pop(n);
    Rng rng(DeriveSeed(seed, 77));
    Rng churn_rng(DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
    const FailurePlan churn = FailurePlan::Churn(
        n, 0, rounds, death_prob, death_prob * 4, churn_rng);
    RunningStat tail;
    for (int r = 0; r < rounds; ++r) {
      churn.Apply(r, &pop);
      pop.Revive(0);
      swarm.RunRound(env, pop, rng);
      if (r >= 30) {
        tail.Add(RmsDeviationOverAlive(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      }
    }
    expected.push_back(tail.mean());
  }

  const CsvTable table = MustRun(
      "name = tvg_small\n"
      "protocol = push-sum-revert\n"
      "protocol.lambda = 0.05\n"
      "environment = spatial\n"
      "env.width = 8\n"
      "env.height = 8\n"
      "hosts = 64\n"
      "rounds = 60\n"
      "seed = 20090414\n"
      "sweep = failure.death_prob: 0, 0.02\n"
      "failure.kind = churn\n"
      "failure.return_factor = 4\n"
      "failure.pin_alive = 0\n"
      "seeds.round_stream = 77\n"
      "record = rms_tail_mean\n"
      "record.from = 30\n",
      2);
  ASSERT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.row(0)[1], expected[0]);
  EXPECT_EQ(table.row(1)[1], expected[1]);
}

TEST(ExecutorParityTest, TagTreeMatchesLegacyAblationLoop) {
  const int side = 8;
  const int n = side * side;
  const int epochs = 8;
  const uint64_t seed = 20090414;
  const double death_prob = 0.01;

  // Hand-rolled replica of the TAG half of ablation_tree_vs_gossip.cc.
  const std::vector<double> values = UniformValues(n, seed);
  SpatialGridEnvironment env(side, side);
  Rng churn_rng(DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
  RunningStat err;
  int failed_epochs = 0;
  Population pop(n);
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(env, pop, /*root=*/0);
    const FailurePlan churn = FailurePlan::Churn(
        n, round, round + tree.max_depth + 1, death_prob, death_prob * 4,
        churn_rng);
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    pop.Revive(0);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    err.Add(std::abs(result.average - TrueAverage(values, pop)));
  }

  const CsvTable table = MustRun(
      "name = tag_small\n"
      "protocol = tag-tree\n"
      "protocol.epochs = 8\n"
      "environment = spatial\n"
      "env.width = 8\n"
      "env.height = 8\n"
      "hosts = 64\n"
      "seed = 20090414\n"
      "failure.kind = churn\n"
      "failure.death_prob = 0.01\n"
      "failure.return_factor = 4\n",
      1);
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], err.mean());
  EXPECT_EQ(table.row(0)[1], 100.0 * failed_epochs / epochs);
}

// ------------------------------------------- parity: convergence kind ---

TEST(ExecutorParityTest, ConvergenceRoundMatchesLegacyTabLoop) {
  const int n = 500;
  const uint64_t seed = 20090406;

  // Hand-rolled replica of tab_convergence.cc PushSumRounds().
  const std::vector<double> values = UniformValues(n, seed);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 3));
  const double truth = TrueAverage(values, pop);
  int expected = -1;
  for (int round = 0; round < 200; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    if (rms < 1.0) {
      expected = round + 1;
      break;
    }
  }
  ASSERT_GT(expected, 0);

  const CsvTable table = MustRun(
      "name = conv_small\n"
      "protocol = push-sum\n"
      "hosts = 500\n"
      "rounds = 200\n"
      "seed = 20090406\n"
      "seeds.round_stream = 3\n"
      "record = rounds_to_converge\n"
      "record.threshold = 1.0\n",
      1);
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], static_cast<double>(expected));
}

// ------------------------------------------------------------- errors ---

TEST(ExecutorTest, BadProtocolParamSurfacesKeyInError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum-revert\n"
      "hosts = 16\n"
      "protocol.lambda = not_a_number\n");
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("protocol.lambda"),
            std::string::npos);
}

TEST(ExecutorTest, UnknownParamSuffixSurfacesInError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "protocol.lamda = 0.5\n");  // typo
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("protocol.lamda"),
            std::string::npos);
}

TEST(ExecutorTest, UnsupportedMetricSurfacesSelectorInError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "record = rms, cdf(counter)\n");  // CSR-only selector
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("cdf(counter)"),
            std::string::npos);
}

TEST(ExecutorTest, LegacyRecordKindGetsMigrationHint) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "record.kind = per_round\n");
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("record.kind"),
            std::string::npos);
  EXPECT_NE(tables.status().message().find("record = rms"),
            std::string::npos);
}

TEST(ExecutorTest, NeverConvergedTrialCannotBeAggregated) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 3\n"
      "trials = 2\n"
      "record = rounds_to_converge\n"
      "record.threshold = 0\n"  // rms < 0 never holds
      "aggregate = mean\n");
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("cannot be aggregated"),
            std::string::npos);
  // Without aggregation the -1 sentinel is reported as-is.
  const auto raw = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 3\n"
      "record = rounds_to_converge\n"
      "record.threshold = 0\n");
  ASSERT_TRUE(raw.ok());
  const Result<std::vector<ResultTable>> raw_tables =
      RunExperiment((*raw)[0], 1);
  ASSERT_TRUE(raw_tables.ok()) << raw_tables.status().ToString();
  EXPECT_EQ((*raw_tables)[0].table.row(0)[0], -1.0);
}

TEST(ExecutorTest, TailMeanWithEmptyWindowIsError) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 10\n"
      "record = rms_tail_mean\n"
      "record.from = 10\n");
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("record.from"),
            std::string::npos);
}

TEST(ExecutorTest, FinalErrorCdfRequiresBucketRange) {
  const auto specs = ParseScenarioFile(
      "protocol = push-sum\n"
      "hosts = 16\n"
      "rounds = 5\n"
      "record = cdf(final_error)\n");  // no record.cdf_hi
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("record.cdf_hi"),
            std::string::npos);
}

TEST(ExecutorTest, BandwidthOnMeterlessProtocolIsError) {
  const auto specs = ParseScenarioFile(
      "protocol = epoch-push-sum\n"
      "hosts = 16\n"
      "rounds = 5\n"
      "record = bandwidth\n");
  ASSERT_TRUE(specs.ok());
  const Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], 1);
  ASSERT_FALSE(tables.ok());
  EXPECT_NE(tables.status().message().find("bandwidth"), std::string::npos);
}

TEST(ExecutorTest, MissingHostsForUniformEnvIsError) {
  const auto specs = ParseScenarioFile("protocol = push-sum\n");
  ASSERT_TRUE(specs.ok());
  EXPECT_FALSE(RunExperiment((*specs)[0], 1).ok());
}

TEST(ExecutorTest, ValidateExperimentCatchesStructuralErrors) {
  ScenarioSpec spec;
  spec.protocol = "push-sum";
  spec.hosts = 16;
  EXPECT_TRUE(ValidateExperiment(spec).ok());

  ScenarioSpec bad_protocol = spec;
  bad_protocol.protocol = "no-such-protocol";
  EXPECT_FALSE(ValidateExperiment(bad_protocol).ok());

  ScenarioSpec bad_metric = spec;
  bad_metric.metrics.clear();
  EXPECT_FALSE(ValidateExperiment(bad_metric).ok());

  ScenarioSpec bad_sweep2 = spec;
  bad_sweep2.sweep2_key = "rounds";
  bad_sweep2.sweep2_values = {10};
  EXPECT_FALSE(ValidateExperiment(bad_sweep2).ok());  // no primary sweep

  ScenarioSpec dup_sweep2 = spec;
  dup_sweep2.sweep_key = "rounds";
  dup_sweep2.sweep_values = {10, 20};
  dup_sweep2.sweep2_key = "rounds";
  dup_sweep2.sweep2_values = {30};
  EXPECT_FALSE(ValidateExperiment(dup_sweep2).ok());  // duplicate key

  ScenarioSpec bad_hosts_sweep = spec;
  bad_hosts_sweep.sweep_key = "hosts";
  bad_hosts_sweep.sweep_values = {10.5};  // not an integer
  EXPECT_FALSE(ValidateExperiment(bad_hosts_sweep).ok());

  // Values without a key would silently drop the intended sweep.
  ScenarioSpec keyless_sweep = spec;
  keyless_sweep.sweep_values = {1, 2};
  EXPECT_FALSE(ValidateExperiment(keyless_sweep).ok());

  ScenarioSpec bad_aggregate = spec;
  bad_aggregate.aggregates = {"median"};
  bad_aggregate.trials = 3;
  EXPECT_FALSE(ValidateExperiment(bad_aggregate).ok());

  // A one-trial stddev would silently read 0 — rejected up front.
  ScenarioSpec single_trial_aggregate = spec;
  single_trial_aggregate.aggregates = {"mean", "stddev"};
  EXPECT_FALSE(ValidateExperiment(single_trial_aggregate).ok());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
