// Sink edge cases: CSV field escaping, empty histogram buckets, and JSONL
// round-trip of every record kind.

#include "scenario/sink.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "scenario/executor.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

std::vector<ResultTable> MustRunAll(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  return std::move(tables).value();
}

std::string MustRender(const std::vector<ResultTable>& tables,
                       const std::string& format) {
  Result<std::string> out = RenderTables(tables, "exp", format);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

/// Extracts `"key":<number>` from a JSONL line; fails the test if absent.
double JsonNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol == std::string::npos ? text.size() : eol + 1;
  }
  return lines;
}

// --------------------------------------------------------- CSV escaping ---

TEST(SinkTest, CsvHeaderCellsAreEscaped) {
  CsvTable table({"plain", "with,comma", "with\"quote"});
  table.AddRow({1.0, 2.0, 3.0});
  std::vector<ResultTable> tables;
  tables.push_back({"summary", std::move(table)});
  const std::string csv = MustRender(tables, "csv");
  EXPECT_NE(csv.find("plain,\"with,comma\",\"with\"\"quote\"\n"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("1,2,3\n"), std::string::npos);
}

TEST(SinkTest, SingleTableKeepsLegacyLayout) {
  CsvTable table({"round", "rms"});
  table.AddRow({1.0, 0.5});
  std::vector<ResultTable> tables;
  tables.push_back({"series", std::move(table)});
  EXPECT_EQ(MustRender(tables, "csv"),
            "# experiment: exp\nround,rms\n1,0.5\n");
  // Single-group JSONL objects carry no record field (pre-Recorder schema).
  EXPECT_EQ(MustRender(tables, "jsonl"),
            "{\"experiment\":\"exp\",\"round\":1,\"rms\":0.5}\n");
}

TEST(SinkTest, MultiTableCarriesRecordLabels) {
  CsvTable summary({"rms_tail_mean"});
  summary.AddRow({0.25});
  CsvTable series({"round", "rms"});
  series.AddRow({1.0, 0.5});
  std::vector<ResultTable> tables;
  tables.push_back({"summary", std::move(summary)});
  tables.push_back({"series", std::move(series)});
  const std::string csv = MustRender(tables, "csv");
  EXPECT_NE(csv.find("# record: summary\n"), std::string::npos);
  EXPECT_NE(csv.find("# record: series\n"), std::string::npos);
  const std::string jsonl = MustRender(tables, "jsonl");
  EXPECT_NE(jsonl.find("\"record\":\"summary\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"record\":\"series\""), std::string::npos);
}

TEST(SinkTest, EmptyTableRendersHeaderOnly) {
  CsvTable table({"a", "b"});
  std::vector<ResultTable> tables;
  tables.push_back({"summary", std::move(table)});
  EXPECT_EQ(MustRender(tables, "csv"), "# experiment: exp\na,b\n");
  EXPECT_EQ(MustRender(tables, "jsonl"), "");
}

TEST(SinkTest, NoTablesOrUnknownFormatIsError) {
  EXPECT_FALSE(RenderTables({}, "exp", "csv").ok());
  CsvTable table({"a"});
  std::vector<ResultTable> tables;
  tables.push_back({"summary", std::move(table)});
  EXPECT_FALSE(RenderTables(tables, "exp", "xml").ok());
}

// ------------------------------------------------ empty histogram buckets ---

// A converged run with a wide CDF range leaves most buckets at count zero:
// the CDF must stay defined, monotone, flat over the empty buckets, and
// reach exactly 1 at the top.
TEST(SinkTest, EmptyHistogramBucketsKeepCdfFlatAndComplete) {
  const std::vector<ResultTable> tables = MustRunAll(
      "name = cdf_flat\n"
      "protocol = push-sum\n"
      "hosts = 64\n"
      "rounds = 50\n"
      "seed = 13\n"
      "record = cdf(final_error)\n"
      "record.cdf_hi = 100\n"
      "record.cdf_buckets = 5\n",
      1);
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].label, "final_error_cdf");
  const CsvTable& table = tables[0].table;
  ASSERT_EQ(table.num_rows(), 5);
  ASSERT_EQ(table.columns().size(), 2u);
  EXPECT_EQ(table.columns()[0], "final_error");
  EXPECT_EQ(table.columns()[1], "cdf");
  double prev = 0.0;
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_GE(table.row(i)[1], prev);
    prev = table.row(i)[1];
  }
  EXPECT_EQ(table.row(table.num_rows() - 1)[1], 1.0);
  // After 50 rounds every error is far below 20 (the first bucket edge),
  // so the tail buckets are empty and the CDF saturates immediately.
  EXPECT_EQ(table.row(0)[1], 1.0);
}

// ----------------------------------------- JSONL round-trip, all kinds ---

TEST(SinkTest, JsonlRoundTripsEveryRecordKind) {
  const std::vector<ResultTable> tables = MustRunAll(
      "name = all_kinds\n"
      "protocol = push-sum\n"
      "hosts = 48\n"
      "rounds = 6\n"
      "seed = 99\n"
      "record = rms, rms_tail_mean, bandwidth, cdf(final_error)\n"
      "record.cdf_hi = 60\n"
      "record.cdf_buckets = 4\n",
      2);
  // summary (scalar + bandwidth), series, histogram — every record kind.
  ASSERT_EQ(tables.size(), 3u);
  const std::string jsonl = MustRender(tables, "jsonl");
  const std::vector<std::string> lines = SplitLines(jsonl);

  // Lines appear table by table, row by row, carrying the record label.
  size_t line = 0;
  for (const ResultTable& result : tables) {
    const CsvTable& table = result.table;
    for (int64_t r = 0; r < table.num_rows(); ++r, ++line) {
      ASSERT_LT(line, lines.size());
      EXPECT_NE(lines[line].find("\"experiment\":\"exp\""),
                std::string::npos);
      EXPECT_NE(
          lines[line].find("\"record\":\"" + result.label + "\""),
          std::string::npos);
      for (size_t c = 0; c < table.columns().size(); ++c) {
        // %.17g is lossless for doubles: the parsed value must be
        // bit-identical to what the executor assembled.
        EXPECT_EQ(JsonNumber(lines[line], table.columns()[c]),
                  table.row(r)[c])
            << "line " << line << " column " << table.columns()[c];
      }
    }
  }
  EXPECT_EQ(line, lines.size());
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
