// Cross-module convergence tests: every protocol, driven end-to-end through
// the round driver over multiple environments, must reach its aggregate.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

TEST(ConvergenceTest, RunRoundsDrivesFailuresAndObserver) {
  const int n = 100;
  const std::vector<double> values = UniformValues(n, 1);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  FailurePlan failures;
  failures.AddKill(5, {0, 1, 2});
  std::vector<int> observed_rounds;
  std::vector<int> alive_at_round;
  RunRounds(swarm, env, pop, failures, 10, rng, [&](int round) {
    observed_rounds.push_back(round);
    alive_at_round.push_back(pop.num_alive());
  });
  ASSERT_EQ(observed_rounds.size(), 10u);
  EXPECT_EQ(observed_rounds.front(), 0);
  EXPECT_EQ(observed_rounds.back(), 9);
  EXPECT_EQ(alive_at_round[4], 100);
  EXPECT_EQ(alive_at_round[5], 97);
}

TEST(ConvergenceTest, ShuffledAliveOrderIsPermutation) {
  Population pop(50);
  pop.Kill(7);
  pop.Kill(31);
  Rng rng(3);
  std::vector<HostId> order;
  ShuffledAliveOrder(pop, rng, &order);
  ASSERT_EQ(order.size(), 48u);
  std::vector<bool> seen(50, false);
  for (const HostId id : order) {
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_TRUE(pop.IsAlive(id));
  }
}

TEST(ConvergenceTest, PushSumConvergenceIsLogarithmic) {
  // Kempe et al.: convergence time grows ~log(n). Rounds to reach 1% error
  // at n=4000 should exceed n=250 by only a few rounds, not a factor.
  auto rounds_to_converge = [](int n) {
    const std::vector<double> values = UniformValues(n, 4);
    PushSumSwarm swarm(values, GossipMode::kPushPull);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(5);
    const double truth = TrueAverage(values, pop);
    for (int round = 0; round < 100; ++round) {
      swarm.RunRound(env, pop, rng);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      if (rms < 0.5) return round + 1;
    }
    return 100;
  };
  const int small = rounds_to_converge(250);
  const int large = rounds_to_converge(4000);
  EXPECT_LT(large, 100);
  EXPECT_LE(large - small, 8);  // ~log2(16) = 4 extra rounds, plus slack
}

TEST(ConvergenceTest, PushPullFasterThanPush) {
  // Karp et al. (Section III.A): push/pull roughly halves initial
  // convergence versus pure push.
  auto rounds_to_converge = [](GossipMode mode) {
    const int n = 2000;
    const std::vector<double> values = UniformValues(n, 6);
    PushSumSwarm swarm(values, mode);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(7);
    const double truth = TrueAverage(values, pop);
    for (int round = 0; round < 100; ++round) {
      swarm.RunRound(env, pop, rng);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      if (rms < 0.5) return round + 1;
    }
    return 100;
  };
  EXPECT_LT(rounds_to_converge(GossipMode::kPushPull),
            rounds_to_converge(GossipMode::kPush));
}

TEST(ConvergenceTest, PushSumConvergesOnSpatialGrid) {
  // Spatial gossip with 1/d^2 walks still converges (Section IV.A), just
  // slower than uniform.
  const int side = 24;
  const int n = side * side;
  const std::vector<double> values = UniformValues(n, 8);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  SpatialGridEnvironment env(side, side);
  Population pop(n);
  Rng rng(9);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 120; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_LT(rms, 2.0);
}

TEST(ConvergenceTest, CsrConvergesOnSpatialGrid) {
  const int side = 20;
  const int n = side * side;
  const std::vector<int64_t> ones(n, 1);
  // Spatial propagation is slower than uniform: relax the cutoff base
  // accordingly (the paper sizes f(k) per-environment, Section IV.A).
  CsrParams params;
  params.cutoff_base = 14.0;
  params.cutoff_slope = 0.5;
  CsrSwarm swarm(ones, params);
  SpatialGridEnvironment env(side, side);
  Population pop(n);
  Rng rng(10);
  for (int round = 0; round < 80; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), n, 0.45 * n);
}

TEST(ConvergenceTest, AllHostsAgreeAfterConvergence) {
  // Gossip averaging drives *every* host's estimate together, not only the
  // population mean: max spread across hosts must be small.
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 11);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.001, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(12);
  for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
  double lo = 1e300;
  double hi = -1e300;
  for (HostId id = 0; id < n; ++id) {
    lo = std::min(lo, swarm.Estimate(id));
    hi = std::max(hi, swarm.Estimate(id));
  }
  EXPECT_LT(hi - lo, 2.0);
}

}  // namespace
}  // namespace dynagg
