// Robustness tests: every deserialization path must reject malformed input
// with a Status — never crash, never silently accept garbage — because
// gossip payloads arrive from untrusted radios.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregator.h"
#include "agg/count_sketch_reset.h"
#include "agg/fm_sketch.h"
#include "common/rng.h"
#include "common/wire.h"
#include "env/contact_trace.h"
#include "env/crawdad.h"

namespace dynagg {
namespace {

std::vector<uint8_t> RandomBytes(Rng& rng, size_t len) {
  std::vector<uint8_t> bytes(len);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(256));
  return bytes;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, AggregatorSurvivesRandomPayloads) {
  Rng rng(GetParam());
  AggregatorConfig config;
  config.csr.bins = 16;
  config.csr.levels = 8;
  NodeAggregator agg(1, 10.0, config);
  for (int trial = 0; trial < 200; ++trial) {
    const auto garbage = RandomBytes(rng, rng.UniformInt(300));
    (void)agg.HandleMessage(garbage);
    (void)agg.HandleReply(garbage);
  }
  // The aggregator must still function after the bombardment.
  NodeAggregator peer(2, 30.0, config);
  const auto request = agg.BeginRound();
  peer.BeginRound();
  const auto reply = peer.HandleMessage(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(agg.HandleReply(*reply).ok());
  agg.EndRound();
  EXPECT_GT(agg.AverageEstimate(), 0.0);
}

TEST_P(FuzzSeedTest, AggregatorSurvivesTruncatedRealPayloads) {
  Rng rng(GetParam() ^ 0xfeed);
  AggregatorConfig config;
  config.csr.bins = 16;
  config.csr.levels = 8;
  NodeAggregator a(1, 10.0, config);
  NodeAggregator b(2, 20.0, config);
  const auto request = a.BeginRound();
  b.BeginRound();
  // Every strict prefix of a real payload must be rejected cleanly.
  for (size_t len = 0; len < request.size(); ++len) {
    std::vector<uint8_t> prefix(request.begin(), request.begin() + len);
    EXPECT_FALSE(b.HandleMessage(prefix).ok()) << "prefix length " << len;
  }
  // The full payload still works afterwards.
  EXPECT_TRUE(b.HandleMessage(request).ok());
}

TEST_P(FuzzSeedTest, AggregatorRejectsBitflippedMassNaN) {
  AggregatorConfig config;
  config.csr.bins = 16;
  config.csr.levels = 8;
  NodeAggregator a(1, 10.0, config);
  NodeAggregator b(2, 20.0, config);
  auto request = a.BeginRound();
  // Overwrite the weight field (offset 3) with a NaN pattern.
  const uint64_t nan_bits = 0x7ff8000000000001ull;
  for (int i = 0; i < 8; ++i) {
    request[3 + i] = static_cast<uint8_t>(nan_bits >> (8 * i));
  }
  b.BeginRound();
  EXPECT_FALSE(b.HandleMessage(request).ok());
}

TEST_P(FuzzSeedTest, FmSketchDeserializeNeverCrashes) {
  Rng rng(GetParam() ^ 0x5ce7c4);
  for (int trial = 0; trial < 500; ++trial) {
    const auto garbage = RandomBytes(rng, rng.UniformInt(200));
    BufReader reader(garbage.data(), garbage.size());
    const auto result = FmSketch::Deserialize(&reader);
    if (result.ok()) {
      // Accepted payloads must be structurally valid.
      EXPECT_GE(result->bins(), 1);
      EXPECT_LE(result->levels(), 64);
    }
  }
}

TEST_P(FuzzSeedTest, CsrMergeSerializedNeverCorruptsState) {
  Rng rng(GetParam() ^ 0xc54);
  CsrParams params;
  params.bins = 8;
  params.levels = 8;
  CountSketchResetNode node;
  node.Init(params, 7, 3);
  const std::vector<uint8_t> before = node.counters();
  for (int trial = 0; trial < 300; ++trial) {
    const auto garbage = RandomBytes(rng, rng.UniformInt(150));
    BufReader reader(garbage.data(), garbage.size());
    const Status status = node.MergeSerialized(&reader);
    if (!status.ok()) continue;
    // If a random payload happens to parse, it can only lower counters.
    for (size_t i = 0; i < before.size(); ++i) {
      ASSERT_LE(node.counters()[i], before[i]);
    }
  }
}

TEST_P(FuzzSeedTest, TraceParsersNeverCrash) {
  Rng rng(GetParam() ^ 0x7ace);
  for (int trial = 0; trial < 200; ++trial) {
    const auto bytes = RandomBytes(rng, rng.UniformInt(400));
    const std::string text(bytes.begin(), bytes.end());
    (void)ContactTrace::Parse(text);
    (void)ParseCrawdadContacts(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dynagg
