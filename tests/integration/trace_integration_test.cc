// End-to-end trace experiments: protocols running over synthetic Haggle
// mobility with group-relative error, exactly as in the Fig 11 harness.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/connectivity.h"
#include "env/haggle_gen.h"
#include "env/trace_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

// Computes per-group true averages for the current grouping.
std::vector<double> GroupAverages(const std::vector<int>& labels,
                                  const std::vector<double>& values) {
  const std::vector<int> sizes = ComponentSizes(labels);
  std::vector<double> sums(sizes.size(), 0.0);
  for (size_t i = 0; i < labels.size(); ++i) sums[labels[i]] += values[i];
  std::vector<double> avgs(sizes.size(), 0.0);
  for (size_t g = 0; g < sizes.size(); ++g) {
    avgs[g] = sizes[g] > 0 ? sums[g] / sizes[g] : 0.0;
  }
  return avgs;
}

TEST(TraceIntegrationTest, RevertingAverageBeatsStaticOnMobility) {
  // The Fig 11 (left column) effect: with devices drifting between small
  // groups, reversion keeps per-group error below the static protocol's.
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset1());
  const int n = trace.num_devices();
  std::vector<double> values(n);
  Rng vrng(1);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);

  auto mean_group_rms = [&](double lambda) {
    TraceEnvironment env(trace);
    Population pop(n);
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    Rng rng(2);
    const SimTime gossip_period = FromSeconds(30);
    RunningStat rms;
    int round = 0;
    for (SimTime t = gossip_period; t <= trace.end_time();
         t += gossip_period, ++round) {
      env.AdvanceTo(t);
      swarm.RunRound(env, pop, rng);
      if (round % 120 != 0) continue;  // sample hourly
      const std::vector<int> labels = env.CurrentGroups();
      const std::vector<double> truths = GroupAverages(labels, values);
      rms.Add(RmsDeviationPerHost(
          pop, [&](HostId id) { return truths[labels[id]]; },
          [&](HostId id) { return swarm.Estimate(id); }));
    }
    return rms.mean();
  };

  const double static_rms = mean_group_rms(0.0);
  const double revert_rms = mean_group_rms(0.01);
  EXPECT_LT(revert_rms, static_rms);
}

TEST(TraceIntegrationTest, CsrGroupSizeTracksGroups) {
  // Fig 11 (right column): Count-Sketch-Reset with 100 identifiers per
  // device tracks the device's current group size; without the cutoff the
  // estimate only grows.
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset1());
  const int n = trace.num_devices();
  const std::vector<int64_t> mults(n, 100);

  auto mean_size_rms = [&](bool cutoff_enabled) {
    CsrParams params;
    params.cutoff_enabled = cutoff_enabled;
    // Small sparse groups propagate slowly; Fig 11 notes the effective
    // reversion is higher because of the 100x identifiers.
    TraceEnvironment env(trace);
    Population pop(n);
    CsrSwarm swarm(mults, params);
    Rng rng(3);
    const SimTime gossip_period = FromSeconds(30);
    RunningStat rms;
    int round = 0;
    for (SimTime t = gossip_period; t <= trace.end_time();
         t += gossip_period, ++round) {
      env.AdvanceTo(t);
      swarm.RunRound(env, pop, rng);
      if (round % 120 != 0) continue;
      const std::vector<int> labels = env.CurrentGroups();
      const std::vector<int> sizes = ComponentSizes(labels);
      rms.Add(RmsDeviationPerHost(
          pop,
          [&](HostId id) { return static_cast<double>(sizes[labels[id]]); },
          [&](HostId id) { return swarm.EstimateCount(id) / 100.0; }));
    }
    return rms.mean();
  };

  const double with_cutoff = mean_size_rms(true);
  const double without_cutoff = mean_size_rms(false);
  EXPECT_LT(with_cutoff, without_cutoff);
  // Paper: "standard deviation remains within half of the correct value";
  // group sizes here are 1-9, so demand a small absolute error.
  EXPECT_LT(with_cutoff, 4.5);
}

TEST(TraceIntegrationTest, IsolatedDeviceEstimatesGroupOfOne) {
  // A device alone in its group must report group size ~1 and average ~its
  // own value once the sketch decays and reversion pulls the mass home.
  ContactTrace trace(3);
  // Devices 0,1,2 meet for 30 minutes, then device 0 is alone for 3 hours.
  trace.AddContact(0, 1, FromMinutes(0), FromMinutes(30));
  trace.AddContact(0, 2, FromMinutes(0), FromMinutes(30));
  trace.AddContact(1, 2, FromMinutes(0), FromMinutes(200));
  trace.Finalize();
  TraceEnvironment env(trace);
  Population pop(3);
  const std::vector<double> values = {10.0, 60.0, 90.0};
  PushSumRevertSwarm psr(values,
                         {.lambda = 0.01, .mode = GossipMode::kPushPull});
  CsrSwarm csr(std::vector<int64_t>(3, 100), CsrParams{});
  Rng rng(4);
  const SimTime gossip_period = FromSeconds(30);
  for (SimTime t = gossip_period; t <= FromMinutes(200);
       t += gossip_period) {
    env.AdvanceTo(t);
    psr.RunRound(env, pop, rng);
    csr.RunRound(env, pop, rng);
  }
  EXPECT_NEAR(psr.Estimate(0), 10.0, 5.0);
  EXPECT_LT(csr.EstimateCount(0) / 100.0, 2.5);
  // Devices 1 and 2 still see each other: group of ~2.
  EXPECT_GT(csr.EstimateCount(1) / 100.0, 1.0);
}

TEST(TraceIntegrationTest, DegreeAwareGossipOnlyTouchesNeighbors) {
  // Protocol exchanges must respect wireless range: two cliques that never
  // meet must never mix estimates.
  ContactTrace trace(4);
  trace.AddContact(0, 1, FromMinutes(0), FromMinutes(100));
  trace.AddContact(2, 3, FromMinutes(0), FromMinutes(100));
  trace.Finalize();
  TraceEnvironment env(trace);
  Population pop(4);
  const std::vector<double> values = {0.0, 20.0, 80.0, 100.0};
  PushSumRevertSwarm swarm(values,
                           {.lambda = 0.0, .mode = GossipMode::kPushPull});
  Rng rng(5);
  for (SimTime t = FromSeconds(30); t <= FromMinutes(90);
       t += FromSeconds(30)) {
    env.AdvanceTo(t);
    swarm.RunRound(env, pop, rng);
  }
  EXPECT_NEAR(swarm.Estimate(0), 10.0, 0.5);
  EXPECT_NEAR(swarm.Estimate(1), 10.0, 0.5);
  EXPECT_NEAR(swarm.Estimate(2), 90.0, 0.5);
  EXPECT_NEAR(swarm.Estimate(3), 90.0, 0.5);
}

}  // namespace
}  // namespace dynagg
