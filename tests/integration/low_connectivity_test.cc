// Paper-claim tests for sparse environments (Section V.A: "In low
// connectivity situations, the error introduced by reversion constants
// grows more rapidly. The protocol continues to outperform traditional
// Push-Sum.").

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum_revert.h"
#include "agg/quantiles.h"
#include "common/rng.h"
#include "env/random_graph_env.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

double SteadyRms(PushSumRevertSwarm& swarm, const Environment& env,
                 Population& pop, const std::vector<double>& values,
                 int rounds, Rng& rng) {
  RunningStat tail;
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
    if (round >= rounds * 3 / 4) {
      tail.Add(RmsDeviationOverAlive(
          pop, TrueAverage(values, pop),
          [&](HostId id) { return swarm.Estimate(id); }));
    }
  }
  return tail.mean();
}

TEST(LowConnectivityTest, ReversionErrorGrowsWithSparsity) {
  // The same lambda costs more accuracy on a sparse overlay than under
  // uniform gossip (mixing is slower, so local bias mixes out less).
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  const PsrParams params{.lambda = 0.1, .mode = GossipMode::kPushPull};

  PushSumRevertSwarm uniform_swarm(values, params);
  UniformEnvironment uniform_env(n);
  Population uniform_pop(n);
  Rng rng1(2);
  const double uniform_rms =
      SteadyRms(uniform_swarm, uniform_env, uniform_pop, values, 80, rng1);

  PushSumRevertSwarm sparse_swarm(values, params);
  RandomGraphEnvironment sparse_env(n, /*degree=*/3, /*seed=*/3);
  Population sparse_pop(n);
  Rng rng2(2);
  const double sparse_rms =
      SteadyRms(sparse_swarm, sparse_env, sparse_pop, values, 80, rng2);

  EXPECT_GT(sparse_rms, uniform_rms);
}

TEST(LowConnectivityTest, ReversionStillBeatsStaticAfterFailureOnSparse) {
  // Even on a degree-4 overlay, Push-Sum-Revert outperforms the static
  // protocol after a correlated failure.
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 4);
  RandomGraphEnvironment env(n, 4, 5);

  auto run = [&](double lambda) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    Population pop(n);
    Rng rng(6);
    for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
    std::vector<HostId> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(),
              [&](HostId a, HostId b) { return values[a] > values[b]; });
    for (int i = 0; i < n / 2; ++i) pop.Kill(ids[i]);
    for (int round = 0; round < 120; ++round) swarm.RunRound(env, pop, rng);
    return RmsDeviationOverAlive(
        pop, TrueAverage(values, pop),
        [&](HostId id) { return swarm.Estimate(id); });
  };

  const double static_rms = run(0.0);
  const double revert_rms = run(0.1);
  EXPECT_LT(revert_rms, static_rms * 0.7);
}

TEST(LowConnectivityTest, CsrNeedsLargerCutoffOnSparseOverlay) {
  // Propagation is slower on a sparse overlay; the uniform-gossip cutoff
  // f(k) = 7 + k/4 under-estimates live bits (flicker), while a relaxed
  // cutoff restores accuracy.
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  RandomGraphEnvironment env(n, 3, 7);

  auto steady_error = [&](double base, double slope) {
    CsrParams params;
    params.cutoff_base = base;
    params.cutoff_slope = slope;
    CsrSwarm swarm(ones, params);
    Population pop(n);
    Rng rng(8);
    RunningStat tail;
    for (int round = 0; round < 60; ++round) {
      swarm.RunRound(env, pop, rng);
      if (round >= 45) {
        tail.Add(std::abs(swarm.EstimateCount(0) - n) / n);
      }
    }
    return tail.mean();
  };

  const double tight = steady_error(7.0, 0.25);
  const double relaxed = steady_error(16.0, 0.75);
  EXPECT_LT(relaxed, 0.35);
  EXPECT_GT(tight, relaxed);
}

TEST(LowConnectivityTest, QuantilesSurviveSparseGossip) {
  const int n = 800;
  const std::vector<double> values = UniformValues(n, 9);
  QuantileParams params;
  params.thresholds = UniformThresholds(0, 100, 11);
  params.psr.lambda = 0.01;
  DynamicCdfSwarm swarm(values, params);
  RandomGraphEnvironment env(n, 6, 10);
  Population pop(n);
  Rng rng(11);
  for (int round = 0; round < 80; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.5), 50.0, 10.0);
}

}  // namespace
}  // namespace dynagg
