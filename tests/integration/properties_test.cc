// Property-based tests: algebraic invariants checked over parameterized
// sweeps of protocol configurations and randomized states.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/fm_sketch.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

// ---------------------------------------------------------------------------
// Mass conservation sweep: every (lambda, mode, n) combination must conserve
// total mass exactly while membership is stable (Section III's invariant).
// ---------------------------------------------------------------------------

using MassParams = std::tuple<double, GossipMode, int>;

class MassConservationTest : public ::testing::TestWithParam<MassParams> {};

TEST_P(MassConservationTest, TotalMassInvariant) {
  const auto [lambda, mode, n] = GetParam();
  Rng vrng(42);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(-50, 150);
  double value_sum = 0.0;
  for (const double v : values) value_sum += v;

  PushSumRevertSwarm swarm(values, {.lambda = lambda, .mode = mode});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    swarm.RunRound(env, pop, rng);
    const Mass total = swarm.TotalAliveMass(pop);
    ASSERT_NEAR(total.weight, n, 1e-9 * n) << "round " << round;
    ASSERT_NEAR(total.value, value_sum, 1e-7 * std::abs(value_sum) + 1e-7)
        << "round " << round;
  }
}

std::string MassParamName(const ::testing::TestParamInfo<MassParams>& info) {
  const double lambda = std::get<0>(info.param);
  const GossipMode mode = std::get<1>(info.param);
  const int n = std::get<2>(info.param);
  std::string name = "lambda";
  for (const char c : std::to_string(lambda)) {
    name += (c == '.' || c == '-') ? '_' : c;
  }
  name += mode == GossipMode::kPush ? "_push_" : "_pushpull_";
  name += std::to_string(n);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    LambdaModeSizeSweep, MassConservationTest,
    ::testing::Combine(::testing::Values(0.0, 0.001, 0.01, 0.1, 0.5, 1.0),
                       ::testing::Values(GossipMode::kPush,
                                         GossipMode::kPushPull),
                       ::testing::Values(2, 17, 256)),
    MassParamName);

// ---------------------------------------------------------------------------
// Convergence sweep: for every lambda the converged estimate must sit within
// an analytically motivated floor (bias grows with lambda).
// ---------------------------------------------------------------------------

class LambdaFloorTest : public ::testing::TestWithParam<double> {};

TEST_P(LambdaFloorTest, ConvergedFloorBoundedByLambda) {
  const double lambda = GetParam();
  const int n = 1000;
  Rng vrng(1);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  PushSumRevertSwarm swarm(values,
                           {.lambda = lambda, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, TrueAverage(values, pop),
      [&](HostId id) { return swarm.Estimate(id); });
  // stddev(U[0,100)) ~ 28.9; the equilibrium bias is empirically about
  // 1.4 * lambda times that, plus gossip noise.
  EXPECT_LE(rms, 1.6 * 29.0 * lambda + 1.0) << "lambda " << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaFloorTest,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.1, 0.25,
                                           0.5));

// ---------------------------------------------------------------------------
// Sketch algebra: OR-merge and min-merge must form idempotent commutative
// monoids; the estimators must be monotone under merge.
// ---------------------------------------------------------------------------

class SketchAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

FmSketch RandomSketch(Rng& rng) {
  FmSketch sketch(16, 20);
  const int inserts = 1 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < inserts; ++i) {
    sketch.InsertObject(rng.Next(), 99);
  }
  return sketch;
}

TEST_P(SketchAlgebraTest, OrMergeMonoidLaws) {
  Rng rng(GetParam());
  const FmSketch a = RandomSketch(rng);
  const FmSketch b = RandomSketch(rng);
  const FmSketch c = RandomSketch(rng);

  // Commutativity.
  FmSketch ab = a;
  ab.MergeOr(b);
  FmSketch ba = b;
  ba.MergeOr(a);
  EXPECT_TRUE(ab == ba);

  // Associativity.
  FmSketch ab_c = ab;
  ab_c.MergeOr(c);
  FmSketch bc = b;
  bc.MergeOr(c);
  FmSketch a_bc = a;
  a_bc.MergeOr(bc);
  EXPECT_TRUE(ab_c == a_bc);

  // Idempotence.
  FmSketch aa = a;
  aa.MergeOr(a);
  EXPECT_TRUE(aa == a);

  // Identity (empty sketch).
  FmSketch a_id = a;
  a_id.MergeOr(FmSketch(16, 20));
  EXPECT_TRUE(a_id == a);

  // Monotone estimator.
  EXPECT_GE(ab.EstimateCount(), a.EstimateCount());
  EXPECT_GE(ab.EstimateCount(), b.EstimateCount());
}

CountSketchResetNode RandomCsrNode(Rng& rng, int ages) {
  CsrParams params;
  params.bins = 8;
  params.levels = 12;
  CountSketchResetNode node;
  node.Init(params, rng.Next(), 1 + static_cast<int>(rng.UniformInt(30)));
  for (int i = 0; i < ages; ++i) node.AgeCounters();
  return node;
}

TEST_P(SketchAlgebraTest, MinMergeMonoidLaws) {
  Rng rng(GetParam() ^ 0xabcdef);
  CountSketchResetNode a = RandomCsrNode(rng, 3);
  CountSketchResetNode b = RandomCsrNode(rng, 9);
  CountSketchResetNode c = RandomCsrNode(rng, 1);

  // Commutativity on counter arrays.
  CountSketchResetNode ab = a;
  ab.MergeFrom(b);
  CountSketchResetNode ba = b;
  ba.MergeFrom(a);
  EXPECT_EQ(ab.counters(), ba.counters());

  // Associativity.
  CountSketchResetNode ab_c = ab;
  ab_c.MergeFrom(c);
  CountSketchResetNode bc = b;
  bc.MergeFrom(c);
  CountSketchResetNode a_bc = a;
  a_bc.MergeFrom(bc);
  EXPECT_EQ(ab_c.counters(), a_bc.counters());

  // Idempotence.
  CountSketchResetNode aa = a;
  aa.MergeFrom(a);
  EXPECT_EQ(aa.counters(), a.counters());

  // Merge never raises a counter.
  for (size_t i = 0; i < a.counters().size(); ++i) {
    EXPECT_LE(ab.counters()[i], a.counters()[i]);
  }
}

TEST_P(SketchAlgebraTest, AgeThenMergeNeverResurrectsBeyondSource) {
  // After any interleaving of ages and merges, a counter can never be lower
  // than (youngest source's age since reset), i.e. merges only propagate
  // values that some owner legitimately produced.
  Rng rng(GetParam() ^ 0x1234);
  CountSketchResetNode a = RandomCsrNode(rng, 0);
  CountSketchResetNode b = RandomCsrNode(rng, 0);
  for (int step = 0; step < 20; ++step) {
    a.AgeCounters();
    b.AgeCounters();
    if (rng.Bernoulli(0.5)) {
      CountSketchResetNode::ExchangeMerge(a, b);
    }
    for (const uint8_t counter : a.counters()) {
      // A counter is either pinned (0 at an owner), a finite age bounded by
      // the number of elapsed steps, the cap, or infinity.
      EXPECT_TRUE(counter <= step + 1 || counter == kCsrCounterCap ||
                  counter == kCsrInfinity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchAlgebraTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---------------------------------------------------------------------------
// Exchange invariants: a single push/pull exchange preserves the pairwise
// sums of weights and values for any state.
// ---------------------------------------------------------------------------

class ExchangeInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExchangeInvariantTest, PairwiseExchangeIsZeroSum) {
  Rng rng(GetParam());
  PushSumNode a;
  PushSumNode b;
  a.Init(rng.UniformDouble(-100, 100));
  b.Init(rng.UniformDouble(-100, 100));
  // Random pre-mixing.
  for (int i = 0; i < 5; ++i) PushSumNode::Exchange(a, b);
  const double w_before = a.mass().weight + b.mass().weight;
  const double v_before = a.mass().value + b.mass().value;
  PushSumNode::Exchange(a, b);
  EXPECT_NEAR(a.mass().weight + b.mass().weight, w_before, 1e-12);
  EXPECT_NEAR(a.mass().value + b.mass().value, v_before, 1e-12);
}

TEST_P(ExchangeInvariantTest, PushEmissionIsZeroSum) {
  Rng rng(GetParam() ^ 0x9999);
  PushSumNode a;
  a.Init(rng.UniformDouble(-100, 100));
  const double w_before = a.mass().weight;
  const double v_before = a.mass().value;
  const Mass out = a.EmitPushHalf();
  a.EndRound();  // self half only
  EXPECT_NEAR(out.weight + a.mass().weight, w_before, 1e-12);
  EXPECT_NEAR(out.value + a.mass().value, v_before, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeInvariantTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Determinism: identical seeds must reproduce identical experiments.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalTrajectories) {
  const int n = 300;
  Rng vrng(5);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);

  auto run = [&values, n]() {
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.01, .mode = GossipMode::kPushPull});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(1234);
    std::vector<double> estimates;
    for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
    for (HostId id = 0; id < n; ++id) {
      estimates.push_back(swarm.Estimate(id));
    }
    return estimates;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dynagg
