// Consensus property at scale: after convergence, *all* hosts — not just a
// sampled one — must report (a) nearly identical estimates and (b) the
// correct aggregate, across protocols and environments. Run at 10,000
// hosts to catch anything that only appears beyond toy sizes.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch_reset.h"
#include "agg/invert_average.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/random_graph_env.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

constexpr int kHosts = 10000;

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

struct Spread {
  double lo = 1e300;
  double hi = -1e300;
  void Add(double x) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  double width() const { return hi - lo; }
};

TEST(ConsensusTest, PsrAllHostsAgreeAtScale) {
  const std::vector<double> values = UniformValues(kHosts, 1);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.001, .mode = GossipMode::kPushPull});
  UniformEnvironment env(kHosts);
  Population pop(kHosts);
  Rng rng(2);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  const double truth = TrueAverage(values, pop);
  Spread spread;
  for (HostId id = 0; id < kHosts; ++id) {
    const double est = swarm.Estimate(id);
    spread.Add(est);
    ASSERT_NEAR(est, truth, 2.0) << "host " << id;
  }
  EXPECT_LT(spread.width(), 3.0);
}

TEST(ConsensusTest, CsrAllHostsHoldIdenticalSketchAtConvergence) {
  const std::vector<int64_t> ones(kHosts, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(kHosts);
  Population pop(kHosts);
  Rng rng(3);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  // Derived bits (not raw counters, which differ by small ages) must agree
  // across all hosts once converged.
  const FmSketch reference = swarm.node(0).DeriveBits();
  const double est0 = swarm.EstimateCount(0);
  int disagreements = 0;
  for (HostId id = 0; id < kHosts; ++id) {
    if (!(swarm.node(id).DeriveBits() == reference)) ++disagreements;
  }
  // A handful of hosts can be mid-flip on a boundary counter.
  EXPECT_LT(disagreements, kHosts / 100);
  EXPECT_NEAR(est0, kHosts, 0.3 * kHosts);
}

TEST(ConsensusTest, InvertAverageConsistentAcrossHosts) {
  const std::vector<double> values = UniformValues(kHosts, 4);
  InvertAverageParams params;
  params.psr.lambda = 0.001;
  InvertAverageSwarm swarm(values, params);
  UniformEnvironment env(kHosts);
  Population pop(kHosts);
  Rng rng(5);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double truth = TrueSum(values, pop);
  Spread spread;
  for (HostId id = 0; id < kHosts; id += 11) {
    const double est = swarm.EstimateSum(id);
    spread.Add(est);
    ASSERT_NEAR(est, truth, 0.35 * truth) << "host " << id;
  }
  // Sum spread is dominated by the shared sketch: hosts agree tightly.
  EXPECT_LT(spread.width(), 0.1 * truth);
}

TEST(ConsensusTest, SparseOverlayStillReachesConsensus) {
  const std::vector<double> values = UniformValues(kHosts, 6);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.0, .mode = GossipMode::kPushPull});
  RandomGraphEnvironment env(kHosts, 8, 7);
  Population pop(kHosts);
  Rng rng(8);
  for (int round = 0; round < 80; ++round) swarm.RunRound(env, pop, rng);
  const double truth = TrueAverage(values, pop);
  Spread spread;
  for (HostId id = 0; id < kHosts; ++id) spread.Add(swarm.Estimate(id));
  EXPECT_LT(spread.width(), 2.0);
  EXPECT_NEAR((spread.lo + spread.hi) / 2, truth, 1.0);
}

}  // namespace
}  // namespace dynagg
