// Failure-injection integration tests: the dynamic protocols must keep
// tracking the live aggregate through kills, revivals and sustained churn,
// while the static baselines demonstrably do not.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/invert_average.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

TEST(FailureRecoveryTest, PsrTracksThroughRepeatedFailures) {
  // Two successive correlated failures: the protocol must re-converge after
  // each one (the continual-estimate property of Section II.C).
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 1);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  FailurePlan failures;
  {
    // Round 20: top quarter; round 60: next quarter.
    std::vector<HostId> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(),
              [&](HostId a, HostId b) { return values[a] > values[b]; });
    failures.AddKill(
        20, std::vector<HostId>(ids.begin(), ids.begin() + n / 4));
    failures.AddKill(60, std::vector<HostId>(ids.begin() + n / 4,
                                             ids.begin() + n / 2));
  }
  std::vector<double> rms_series;
  RunRounds(swarm, env, pop, failures, 110, rng, [&](int) {
    rms_series.push_back(RmsDeviationOverAlive(
        pop, TrueAverage(values, pop),
        [&](HostId id) { return swarm.Estimate(id); }));
  });
  // Converged before each failure and recovered after both.
  EXPECT_LT(rms_series[19], 6.0);
  EXPECT_GT(rms_series[21], rms_series[19]);  // failure spike
  EXPECT_LT(rms_series[55], 5.0);             // recovered once
  EXPECT_LT(rms_series[109], 5.0);            // recovered twice
}

TEST(FailureRecoveryTest, PsrSurvivesContinuousChurn) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 3);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.05, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  Rng churn_rng(5);
  const FailurePlan churn =
      FailurePlan::Churn(n, 10, 100, 0.01, 0.1, churn_rng);
  std::vector<double> rms_tail;
  RunRounds(swarm, env, pop, churn, 100, rng, [&](int round) {
    if (round >= 60) {
      rms_tail.push_back(RmsDeviationOverAlive(
          pop, TrueAverage(values, pop),
          [&](HostId id) { return swarm.Estimate(id); }));
    }
  });
  double mean_rms = 0.0;
  for (const double r : rms_tail) mean_rms += r;
  mean_rms /= static_cast<double>(rms_tail.size());
  // Uncorrelated churn: the estimate stays near the moving truth.
  EXPECT_LT(mean_rms, 5.0);
}

TEST(FailureRecoveryTest, RevivedHostsRejoinTheAverage) {
  const int n = 500;
  std::vector<double> values(n, 10.0);
  // Hosts n/2.. carry value 90 and are initially dead.
  for (int i = n / 2; i < n; ++i) values[i] = 90.0;
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  Rng rng(6);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.Estimate(0), 10.0, 2.0);
  for (HostId id = n / 2; id < n; ++id) pop.Revive(id);
  for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.Estimate(0), 50.0, 5.0);
}

TEST(FailureRecoveryTest, CsrRecoveryTimeScalesWithCutoff) {
  // "The range cutoff limits how long a bit no longer sourced remains in
  // the system": a larger cutoff base delays recovery.
  auto recovery_round = [](double cutoff_base) {
    const int n = 1000;
    const std::vector<int64_t> ones(n, 1);
    CsrParams params;
    params.cutoff_base = cutoff_base;
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(7);
    for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
    for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
    for (int round = 0; round < 80; ++round) {
      swarm.RunRound(env, pop, rng);
      if (std::abs(swarm.EstimateCount(0) - n / 2.0) < 0.3 * (n / 2.0)) {
        return round;
      }
    }
    return 80;
  };
  const int fast = recovery_round(7.0);
  const int slow = recovery_round(20.0);
  EXPECT_LT(fast, slow);
  EXPECT_LT(fast, 25);
}

TEST(FailureRecoveryTest, InvertAverageBeatsStaticSketchAfterFailure) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 8);
  UniformEnvironment env(n);

  // Static multi-insert sum (Considine): register round(v) identifiers.
  std::vector<int64_t> mults(n);
  for (int i = 0; i < n; ++i) {
    mults[i] = static_cast<int64_t>(values[i] + 0.5);
  }
  CountSketchSwarm static_sum(mults, CountSketchParams{});
  InvertAverageParams ia_params;
  ia_params.psr.lambda = 0.1;
  InvertAverageSwarm dynamic_sum(values, ia_params);

  Population pop_static(n);
  Population pop_dynamic(n);
  Rng rng_static(9);
  Rng rng_dynamic(9);
  for (int round = 0; round < 25; ++round) {
    static_sum.RunRound(env, pop_static, rng_static);
    dynamic_sum.RunRound(env, pop_dynamic, rng_dynamic);
  }
  // Kill the top-valued half in both populations.
  std::vector<HostId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(),
            [&](HostId a, HostId b) { return values[a] > values[b]; });
  for (int i = 0; i < n / 2; ++i) {
    pop_static.Kill(ids[i]);
    pop_dynamic.Kill(ids[i]);
  }
  for (int round = 0; round < 40; ++round) {
    static_sum.RunRound(env, pop_static, rng_static);
    dynamic_sum.RunRound(env, pop_dynamic, rng_dynamic);
  }
  const double truth = TrueSum(values, pop_dynamic);
  const double static_err =
      std::abs(static_sum.EstimateCount(0) - truth);
  const double dynamic_err = std::abs(dynamic_sum.EstimateSum(0) - truth);
  // The static sketch still reports ~ the old sum (~4x the new one).
  EXPECT_GT(static_err, 1.5 * truth);
  EXPECT_LT(dynamic_err, 0.5 * truth);
}

TEST(FailureRecoveryTest, TotalExtinctionAndRepopulation) {
  const int n = 100;
  const std::vector<double> values = UniformValues(n, 10);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(11);
  for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = 0; id < n; ++id) pop.Kill(id);
  // Rounds with nobody alive must be harmless.
  for (int round = 0; round < 5; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = 0; id < n; ++id) pop.Revive(id);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.Estimate(0), TrueAverage(values, pop), 10.0);
}

}  // namespace
}  // namespace dynagg
