#include "env/crawdad.h"

#include <string>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(CrawdadTest, ParsesBasicTable) {
  const std::string text =
      "# experiment 1\n"
      "1 2 100.0 200.0\n"
      "2 3 150.0 300.0\n";
  const auto trace = ParseCrawdadContacts(text);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->num_devices(), 3);
  EXPECT_EQ(trace->num_contacts(), 2);
  // Time rebased: earliest start (100) becomes 0.
  EXPECT_EQ(trace->Events().front().time, FromSeconds(0));
  EXPECT_EQ(trace->end_time(), FromSeconds(200));
}

TEST(CrawdadTest, DenseIdRemappingInOrderOfAppearance) {
  const std::string text =
      "17 42 0 10\n"
      "42 5 5 15\n";
  const auto trace = ParseCrawdadContacts(text);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_devices(), 3);  // 17 -> 0, 42 -> 1, 5 -> 2
  const auto& first_up = trace->Events().front();
  EXPECT_EQ(first_up.a, 0);
  EXPECT_EQ(first_up.b, 1);
}

TEST(CrawdadTest, IgnoresExtraColumnsAndComments) {
  const std::string text =
      "% matlab-style comment\n"
      "1 2 0 10 1 99 extra\n";
  const auto trace = ParseCrawdadContacts(text);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_contacts(), 1);
}

TEST(CrawdadTest, MinDurationFilter) {
  CrawdadOptions options;
  options.min_duration_seconds = 5.0;
  const std::string text =
      "1 2 0 3\n"    // 3 s: dropped
      "1 2 10 20\n"  // 10 s: kept
      "2 3 30 31\n";  // 1 s: dropped
  const auto trace = ParseCrawdadContacts(text, options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_contacts(), 1);
}

TEST(CrawdadTest, MaxDevicesFilter) {
  CrawdadOptions options;
  options.max_devices = 2;
  const std::string text =
      "1 2 0 10\n"
      "3 4 0 10\n"   // devices 3 and 4 exceed the cap: dropped
      "2 1 20 30\n";
  const auto trace = ParseCrawdadContacts(text, options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_devices(), 2);
  EXPECT_EQ(trace->num_contacts(), 2);
}

TEST(CrawdadTest, NoRebaseOption) {
  CrawdadOptions options;
  options.rebase_time = false;
  const auto trace = ParseCrawdadContacts("1 2 100 200\n", options);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->Events().front().time, FromSeconds(100));
}

TEST(CrawdadTest, RejectsSelfContact) {
  const auto result = ParseCrawdadContacts("3 3 0 10\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CrawdadTest, RejectsInvertedInterval) {
  EXPECT_FALSE(ParseCrawdadContacts("1 2 10 5\n").ok());
}

TEST(CrawdadTest, RejectsMalformedRecord) {
  EXPECT_FALSE(ParseCrawdadContacts("1 2 abc 10\n").ok());
  EXPECT_FALSE(ParseCrawdadContacts("1 2 10\n").ok());
}

TEST(CrawdadTest, SkipsZeroLengthContacts) {
  const auto trace = ParseCrawdadContacts("1 2 5 5\n1 2 6 7\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_contacts(), 1);
}

TEST(CrawdadTest, EmptyInput) {
  const auto trace = ParseCrawdadContacts("");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->num_devices(), 0);
  EXPECT_EQ(trace->num_contacts(), 0);
}

TEST(CrawdadTest, RoundTripsThroughTraceText) {
  const auto trace = ParseCrawdadContacts("1 2 0 10\n2 3 5 20\n");
  ASSERT_TRUE(trace.ok());
  const auto reparsed = ContactTrace::Parse(trace->ToText());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_contacts(), trace->num_contacts());
}

}  // namespace
}  // namespace dynagg
