// Join-side cache invalidation: environments key their partner-plan and
// alive-neighbor caches on the population's fingerprint, so a JOIN — a
// first-time arrival from the unborn pool or a rebirth reusing a dead
// host's ID — must invalidate them exactly like a death does. Each case
// warms the caches, mutates membership through the join path a churn plan
// takes (partial-alive construction + Revive), and demands BuildPlan still
// match the freshly-evaluated SamplePeer reference with bit-identical Rng
// consumption.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/environment.h"
#include "env/partner_plan.h"
#include "env/random_graph_env.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "sim/churn.h"
#include "sim/population.h"

namespace dynagg {
namespace {

/// Same parity check as partner_plan_test.cc: BuildPlan over `initiators`
/// must produce the partners — and consume the draws — of the per-slot
/// SamplePeer loop.
void ExpectPlanMatchesSamplePeer(const Environment& env, const Population& pop,
                                 const std::vector<HostId>& initiators,
                                 uint64_t seed) {
  Rng plan_rng(seed);
  Rng ref_rng(seed);

  PartnerPlan plan;
  plan.Reset(initiators, /*slots_per_initiator=*/1);
  env.BuildPlan(pop, plan_rng, &plan);

  ASSERT_EQ(plan.size(), initiators.size());
  for (size_t k = 0; k < initiators.size(); ++k) {
    const HostId expected = env.SamplePeer(initiators[k], pop, ref_rng);
    EXPECT_EQ(plan.partner(k), expected) << "slot " << k;
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan_rng.Next(), ref_rng.Next()) << "rng drift at draw " << i;
  }
}

TEST(ChurnJoinParityTest, UniformFirstArrivalInvalidatesPlan) {
  UniformEnvironment env(64);
  Population pop(64, 40);  // ids 40..63 unborn
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 101);
  // Arrivals from the unborn pool: a stale plan would never pick them.
  pop.Revive(40);
  pop.Revive(41);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 102);
}

TEST(ChurnJoinParityTest, UniformRebirthWithIdReuseInvalidatesPlan) {
  UniformEnvironment env(64);
  Population pop(64);
  pop.Kill(7);
  pop.Kill(21);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 103);
  // Rebirth reusing a dead ID: same id, new membership — must rebuild.
  pop.Revive(7);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 104);
  pop.Revive(21);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 105);
}

TEST(ChurnJoinParityTest, SpatialJoinInvalidatesAliveBitmap) {
  SpatialGridEnvironment env(8, 8);
  Population pop(64, 48);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 111);
  // Joins land in the bitmap's dead region; stale bits skip the newcomers.
  pop.Revive(48);
  pop.Revive(60);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 112);
  pop.Kill(3);
  pop.Revive(3);  // kill-then-rebirth of the same id, back to back
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 113);
}

TEST(ChurnJoinParityTest, RandomGraphJoinInvalidatesAliveNeighborRows) {
  RandomGraphEnvironment env(60, 4, /*seed=*/77);
  // Sparse start: most neighbor lookups fall through to the cached
  // alive-neighbor rows, the path a stale join would corrupt.
  Population pop(60, 15);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 121);
  for (HostId id = 15; id < 25; ++id) pop.Revive(id);
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 122);
  pop.Kill(20);
  pop.Revive(20);  // rebirth with ID reuse
  ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(), 123);
}

// End-to-end against the real schedule: drive a churn plan's rounds over a
// warm environment, checking parity after every membership change the plan
// makes — the exact Apply/BuildPlan interleaving the rounds driver runs.
TEST(ChurnJoinParityTest, UniformStaysInParityAcrossAWholeChurnPlan) {
  UniformEnvironment env(48);
  ChurnParams params;
  params.n = 48;
  params.initial = 24;
  params.arrival_rate = 1.0;
  params.death_prob = 0.05;
  params.rebirth_prob = 0.2;
  params.start_round = 0;
  params.end_round = 25;
  params.max_alive = 40;
  Rng churn_rng(31);
  const ChurnPlan plan = ChurnPlan::Build(params, churn_rng);
  ASSERT_FALSE(plan.empty());

  Population pop(params.n, params.initial);
  for (int round = 0; round < params.end_round; ++round) {
    plan.Apply(round, &pop, nullptr);
    ExpectPlanMatchesSamplePeer(env, pop, pop.alive_ids(),
                                /*seed=*/200 + round);
  }
}

}  // namespace
}  // namespace dynagg
