#include "env/spatial_env.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(SpatialEnvTest, Geometry) {
  SpatialGridEnvironment env(8, 5);
  EXPECT_EQ(env.num_hosts(), 40);
  EXPECT_EQ(env.width(), 8);
  EXPECT_EQ(env.height(), 5);
}

TEST(SpatialEnvTest, NeighborsInterior) {
  SpatialGridEnvironment env(4, 4);
  Population pop(16);
  std::vector<HostId> neighbors;
  env.AppendNeighbors(5, pop, &neighbors);  // (x=1, y=1)
  EXPECT_EQ(neighbors.size(), 4u);
}

TEST(SpatialEnvTest, NeighborsCorner) {
  SpatialGridEnvironment env(4, 4);
  Population pop(16);
  std::vector<HostId> neighbors;
  env.AppendNeighbors(0, pop, &neighbors);
  EXPECT_EQ(neighbors.size(), 2u);  // right and down only
}

TEST(SpatialEnvTest, NeighborsSkipDead) {
  SpatialGridEnvironment env(3, 3);
  Population pop(9);
  pop.Kill(1);  // north neighbor of center
  std::vector<HostId> neighbors;
  env.AppendNeighbors(4, pop, &neighbors);
  EXPECT_EQ(neighbors.size(), 3u);
}

TEST(SpatialEnvTest, WalkLengthDistributionFollowsInverseSquare) {
  SpatialGridEnvironment env(10, 10, /*max_distance=*/8);
  Rng rng(1);
  std::vector<int> counts(9, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[env.SampleWalkLength(rng)];
  // P(d) ~ 1/d^2: d=1 should be ~4x as likely as d=2, ~9x as d=3.
  const double p1 = static_cast<double>(counts[1]) / draws;
  const double p2 = static_cast<double>(counts[2]) / draws;
  const double p3 = static_cast<double>(counts[3]) / draws;
  EXPECT_NEAR(p1 / p2, 4.0, 0.25);
  EXPECT_NEAR(p1 / p3, 9.0, 0.8);
}

TEST(SpatialEnvTest, WalkLengthWithinBounds) {
  SpatialGridEnvironment env(5, 5, 6);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const int d = env.SampleWalkLength(rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 6);
  }
}

TEST(SpatialEnvTest, SamplePeerStaysOnGridAndAlive) {
  SpatialGridEnvironment env(6, 6);
  Population pop(36);
  pop.Kill(7);
  pop.Kill(22);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const HostId peer = env.SamplePeer(14, pop, rng);
    if (peer == kInvalidHost) continue;
    EXPECT_GE(peer, 0);
    EXPECT_LT(peer, 36);
    EXPECT_TRUE(pop.IsAlive(peer));
    EXPECT_NE(peer, 14);
  }
}

TEST(SpatialEnvTest, SamplePeerReachesBeyondAdjacency) {
  // Multi-hop random walks must reach hosts farther than one grid step.
  SpatialGridEnvironment env(9, 9);
  Population pop(81);
  Rng rng(4);
  const HostId center = 40;  // (4,4)
  bool far_reached = false;
  for (int i = 0; i < 5000 && !far_reached; ++i) {
    const HostId peer = env.SamplePeer(center, pop, rng);
    if (peer == kInvalidHost) continue;
    const int dx = std::abs(peer % 9 - 4);
    const int dy = std::abs(peer / 9 - 4);
    if (dx + dy >= 3) far_reached = true;
  }
  EXPECT_TRUE(far_reached);
}

TEST(SpatialEnvTest, IsolatedHostHasNoPeer) {
  SpatialGridEnvironment env(3, 1);
  Population pop(3);
  pop.Kill(1);  // host 0's only neighbor
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(env.SamplePeer(0, pop, rng), kInvalidHost);
  }
}

TEST(SpatialEnvTest, SingleCellGrid) {
  SpatialGridEnvironment env(1, 1);
  Population pop(1);
  Rng rng(6);
  EXPECT_EQ(env.SamplePeer(0, pop, rng), kInvalidHost);
}

}  // namespace
}  // namespace dynagg
