#include "env/uniform_env.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(UniformEnvTest, SamplePeerNeverSelf) {
  UniformEnvironment env(20);
  Population pop(20);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const HostId peer = env.SamplePeer(3, pop, rng);
    ASSERT_NE(peer, kInvalidHost);
    EXPECT_NE(peer, 3);
  }
}

TEST(UniformEnvTest, SamplePeerSkipsDead) {
  UniformEnvironment env(10);
  Population pop(10);
  for (HostId id = 5; id < 10; ++id) pop.Kill(id);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const HostId peer = env.SamplePeer(0, pop, rng);
    ASSERT_NE(peer, kInvalidHost);
    EXPECT_LT(peer, 5);
    EXPECT_NE(peer, 0);
  }
}

TEST(UniformEnvTest, SamplePeerIsUniform) {
  UniformEnvironment env(5);
  Population pop(5);
  Rng rng(3);
  std::vector<int> counts(5, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[env.SamplePeer(0, pop, rng)];
  EXPECT_EQ(counts[0], 0);
  for (HostId id = 1; id < 5; ++id) EXPECT_NEAR(counts[id], draws / 4, 400);
}

TEST(UniformEnvTest, NoPeerWhenAlone) {
  UniformEnvironment env(3);
  Population pop(3);
  pop.Kill(1);
  pop.Kill(2);
  Rng rng(4);
  EXPECT_EQ(env.SamplePeer(0, pop, rng), kInvalidHost);
}

TEST(UniformEnvTest, NeighborsAreAllAliveOthers) {
  UniformEnvironment env(6);
  Population pop(6);
  pop.Kill(4);
  std::vector<HostId> neighbors;
  env.AppendNeighbors(2, pop, &neighbors);
  EXPECT_EQ(neighbors.size(), 4u);  // 6 hosts - self - 1 dead
  for (const HostId id : neighbors) {
    EXPECT_NE(id, 2);
    EXPECT_NE(id, 4);
  }
}

TEST(UniformEnvTest, NumHosts) {
  UniformEnvironment env(123);
  EXPECT_EQ(env.num_hosts(), 123);
}

TEST(UniformEnvTest, AdvanceToIsNoOp) {
  UniformEnvironment env(4);
  env.AdvanceTo(FromHours(5));  // must not crash or change behaviour
  Population pop(4);
  Rng rng(5);
  EXPECT_NE(env.SamplePeer(0, pop, rng), kInvalidHost);
}

}  // namespace
}  // namespace dynagg
