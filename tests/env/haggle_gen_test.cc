#include "env/haggle_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "env/trace_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(HaggleGenTest, PresetsMatchPaperScales) {
  EXPECT_EQ(HaggleDataset1().num_devices, 9);
  EXPECT_EQ(HaggleDataset2().num_devices, 12);
  EXPECT_EQ(HaggleDataset3().num_devices, 41);
  EXPECT_NEAR(HaggleDataset1().duration_hours, 90.0, 1e-9);
  EXPECT_NEAR(HaggleDataset2().duration_hours, 120.0, 1e-9);
  EXPECT_NEAR(HaggleDataset3().duration_hours, 70.0, 1e-9);
}

TEST(HaggleGenTest, GeneratesNonEmptyTrace) {
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset1());
  EXPECT_GT(trace.num_contacts(), 50);
  EXPECT_LE(trace.end_time(), FromHours(90.0));
  EXPECT_GT(trace.end_time(), FromHours(10.0));
}

TEST(HaggleGenTest, DeterministicForSeed) {
  const ContactTrace a = GenerateHaggleTrace(HaggleDataset2());
  const ContactTrace b = GenerateHaggleTrace(HaggleDataset2());
  EXPECT_EQ(a.ToText(), b.ToText());
}

TEST(HaggleGenTest, SeedChangesTrace) {
  HaggleGenParams p1 = HaggleDataset1();
  HaggleGenParams p2 = HaggleDataset1();
  p2.seed = p1.seed + 1;
  EXPECT_NE(GenerateHaggleTrace(p1).ToText(),
            GenerateHaggleTrace(p2).ToText());
}

TEST(HaggleGenTest, TraceRoundTripsThroughText) {
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset1());
  const auto parsed = ContactTrace::Parse(trace.ToText());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_contacts(), trace.num_contacts());
  EXPECT_EQ(parsed->num_devices(), trace.num_devices());
}

TEST(HaggleGenTest, GroupSizesStayInPlausibleRange) {
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset1());
  TraceEnvironment env(trace);
  double max_avg_group = 0.0;
  double sum_avg_group = 0.0;
  int samples = 0;
  for (double h = 1.0; h < 90.0; h += 1.0) {
    env.AdvanceTo(FromHours(h));
    const double g = env.AverageGroupSize();
    max_avg_group = std::max(max_avg_group, g);
    sum_avg_group += g;
    ++samples;
  }
  // Devices sometimes gather (groups form) but are not permanently merged.
  EXPECT_GT(max_avg_group, 2.0);
  EXPECT_LE(max_avg_group, 9.0);
  EXPECT_GT(sum_avg_group / samples, 1.0);
  EXPECT_LT(sum_avg_group / samples, 7.0);
}

TEST(HaggleGenTest, ConferencePresetFormsLargerGroups) {
  const ContactTrace trace = GenerateHaggleTrace(HaggleDataset3());
  TraceEnvironment env(trace);
  double max_avg_group = 0.0;
  for (double h = 0.5; h < 70.0; h += 0.5) {
    env.AdvanceTo(FromHours(h));
    max_avg_group = std::max(max_avg_group, env.AverageGroupSize());
  }
  EXPECT_GT(max_avg_group, 8.0);  // conference sessions merge many devices
}

TEST(HaggleGenTest, DayNightCycleModulatesActivity) {
  HaggleGenParams p = HaggleDataset1();
  p.night_activity_factor = 0.0;  // nothing happens at night
  const ContactTrace trace = GenerateHaggleTrace(p);
  int day_events = 0;
  int night_events = 0;
  for (const ContactEvent& ev : trace.Events()) {
    if (!ev.up) continue;
    const double hour_of_day = std::fmod(ToHours(ev.time), 24.0);
    if (hour_of_day >= p.day_start_hour && hour_of_day < p.day_end_hour) {
      ++day_events;
    } else {
      ++night_events;
    }
  }
  EXPECT_GT(day_events, 0);
  EXPECT_EQ(night_events, 0);
}

TEST(HaggleGenTest, RespectsMaxGroupBound) {
  HaggleGenParams p = HaggleDataset1();
  p.max_group = 3;
  const ContactTrace trace = GenerateHaggleTrace(p);
  // A gathering of k members creates k*(k-1)/2 simultaneous contacts with
  // identical start times; max_group 3 allows at most 3 contacts per start.
  std::map<SimTime, int> per_start;
  for (const ContactEvent& ev : trace.Events()) {
    if (ev.up) ++per_start[ev.time];
  }
  for (const auto& [time, count] : per_start) {
    EXPECT_LE(count, 3) << "gathering too large at " << time;
  }
}

}  // namespace
}  // namespace dynagg
