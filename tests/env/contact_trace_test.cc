#include "env/contact_trace.h"

#include <string>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(ContactTraceTest, EmptyTrace) {
  ContactTrace trace(5);
  trace.Finalize();
  EXPECT_EQ(trace.num_devices(), 5);
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.end_time(), 0);
  EXPECT_EQ(trace.num_contacts(), 0);
}

TEST(ContactTraceTest, ContactYieldsUpAndDownEvents) {
  ContactTrace trace(3);
  trace.AddContact(0, 1, FromSeconds(10), FromSeconds(20));
  trace.Finalize();
  const auto& events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, FromSeconds(10));
  EXPECT_TRUE(events[0].up);
  EXPECT_EQ(events[1].time, FromSeconds(20));
  EXPECT_FALSE(events[1].up);
  EXPECT_EQ(events[0].a, 0);
  EXPECT_EQ(events[0].b, 1);
}

TEST(ContactTraceTest, EventsSortedByTime) {
  ContactTrace trace(4);
  trace.AddContact(2, 3, FromSeconds(50), FromSeconds(60));
  trace.AddContact(0, 1, FromSeconds(5), FromSeconds(70));
  trace.AddContact(1, 2, FromSeconds(30), FromSeconds(40));
  trace.Finalize();
  const auto& events = trace.Events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  EXPECT_EQ(trace.end_time(), FromSeconds(70));
}

TEST(ContactTraceTest, NormalizesEdgeOrder) {
  ContactTrace trace(3);
  trace.AddContact(2, 0, FromSeconds(1), FromSeconds(2));
  trace.Finalize();
  EXPECT_EQ(trace.Events()[0].a, 0);
  EXPECT_EQ(trace.Events()[0].b, 2);
}

TEST(ContactTraceTest, DownSortsBeforeUpAtSameInstant) {
  ContactTrace trace(2);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(10));
  trace.AddContact(0, 1, FromSeconds(10), FromSeconds(20));
  trace.Finalize();
  const auto& events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_FALSE(events[1].up);  // the t=10 down-event precedes the up-event
  EXPECT_TRUE(events[2].up);
}

TEST(ContactTraceTest, TextRoundTrip) {
  ContactTrace trace(9);
  trace.AddContact(0, 1, FromSeconds(1.5), FromSeconds(3.25));
  trace.AddContact(4, 7, FromSeconds(100), FromSeconds(250.75));
  trace.Finalize();
  const std::string text = trace.ToText();
  const Result<ContactTrace> parsed = ContactTrace::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_devices(), 9);
  EXPECT_EQ(parsed->num_contacts(), 2);
  ASSERT_EQ(parsed->Events().size(), 4u);
  EXPECT_EQ(parsed->Events()[0].time, FromSeconds(1.5));
  EXPECT_EQ(parsed->end_time(), FromSeconds(250.75));
}

TEST(ContactTraceTest, ParseRejectsBadHeader) {
  EXPECT_FALSE(ContactTrace::Parse("nonsense v9\ndevices 3\n").ok());
}

TEST(ContactTraceTest, ParseRejectsMissingDevices) {
  EXPECT_FALSE(ContactTrace::Parse("dynagg-trace v1\nwidgets 3\n").ok());
}

TEST(ContactTraceTest, ParseRejectsOutOfRangeDevice) {
  const std::string text =
      "dynagg-trace v1\ndevices 3\ncontact 0 5 1.0 2.0\n";
  const auto result = ContactTrace::Parse(text);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(ContactTraceTest, ParseRejectsSelfContact) {
  EXPECT_FALSE(
      ContactTrace::Parse("dynagg-trace v1\ndevices 3\ncontact 1 1 0 1\n")
          .ok());
}

TEST(ContactTraceTest, ParseRejectsInvertedInterval) {
  EXPECT_FALSE(
      ContactTrace::Parse("dynagg-trace v1\ndevices 3\ncontact 0 1 5 5\n")
          .ok());
}

TEST(ContactTraceTest, ParseRejectsMalformedNumbers) {
  EXPECT_FALSE(
      ContactTrace::Parse("dynagg-trace v1\ndevices 3\ncontact 0 1 x 2\n")
          .ok());
}

TEST(ContactTraceTest, ParseSkipsComments) {
  const auto result = ContactTrace::Parse(
      "dynagg-trace v1\ndevices 2\n# a comment\ncontact 0 1 0.0 1.0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_contacts(), 1);
}

TEST(ContactTraceTest, ParseEmptyTraceBody) {
  const auto result = ContactTrace::Parse("dynagg-trace v1\ndevices 7\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_devices(), 7);
  EXPECT_TRUE(result->Events().empty());
}

}  // namespace
}  // namespace dynagg
