// Environment API v2 contract tests: for every environment,
// Environment::BuildPlan must produce exactly the partners — and consume
// exactly the Rng draws — of the equivalent sequence of per-host SamplePeer
// calls, including after population mutations (kill/revive) and trace
// playback (AdvanceTo), which exercise every batched implementation's cache
// invalidation. A stale alive-neighbor cache or alive bitmap diverges from
// the freshly-evaluated SamplePeer reference immediately.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/contact_trace.h"
#include "env/environment.h"
#include "env/partner_plan.h"
#include "env/random_graph_env.h"
#include "env/spatial_env.h"
#include "env/trace_env.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

/// Asserts that BuildPlan over `initiators` matches the per-slot SamplePeer
/// reference: same partners, same Rng consumption (checked by comparing the
/// generators' next outputs afterwards).
void ExpectPlanMatchesSamplePeer(const Environment& env, const Population& pop,
                                 const std::vector<HostId>& initiators,
                                 uint64_t seed) {
  Rng plan_rng(seed);
  Rng ref_rng(seed);

  PartnerPlan plan;
  plan.Reset(initiators, /*slots_per_initiator=*/1);
  env.BuildPlan(pop, plan_rng, &plan);

  ASSERT_EQ(plan.size(), initiators.size());
  for (size_t k = 0; k < initiators.size(); ++k) {
    const HostId expected = env.SamplePeer(initiators[k], pop, ref_rng);
    EXPECT_EQ(plan.partner(k), expected) << "slot " << k;
  }
  // Bit-identical Rng consumption: both generators must now be in the same
  // state.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan_rng.Next(), ref_rng.Next()) << "rng drift at draw " << i;
  }
}

std::vector<HostId> AliveInitiators(const Population& pop) {
  return pop.alive_ids();
}

TEST(PartnerPlanTest, ResetExpandsSlotsPerInitiator) {
  PartnerPlan plan;
  plan.Reset({3, 1, 4}, /*slots_per_initiator=*/2);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.initiator(0), 3);
  EXPECT_EQ(plan.initiator(1), 3);
  EXPECT_EQ(plan.initiator(2), 1);
  EXPECT_EQ(plan.initiator(5), 4);
  EXPECT_FALSE(plan.identity_initiators());
}

TEST(PartnerPlanTest, EffectivePartnerFallsBackToInitiator) {
  PartnerPlan plan;
  plan.Reset({7, 8}, 1);
  (*plan.mutable_partners())[0] = 8;
  (*plan.mutable_partners())[1] = kInvalidHost;
  EXPECT_EQ(plan.EffectivePartner(0), 8);
  EXPECT_EQ(plan.EffectivePartner(1), 8);
  EXPECT_EQ(plan.CountMatched(), 1);
}

// ------------------------------------------------------------ uniform ---

TEST(PartnerPlanParityTest, UniformMatchesSamplePeer) {
  UniformEnvironment env(64);
  Population pop(64);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 11);
}

TEST(PartnerPlanParityTest, UniformIdentityFastPathMatches) {
  UniformEnvironment env(64);
  Population pop(64);
  PartnerPlan plan;
  plan.Reset(pop.alive_ids(), 1);
  plan.set_identity_initiators(true);  // what PlanPushRound sets
  Rng plan_rng(11);
  Rng ref_rng(11);
  env.BuildPlan(pop, plan_rng, &plan);
  for (size_t k = 0; k < plan.size(); ++k) {
    EXPECT_EQ(plan.partner(k), env.SamplePeer(plan.initiator(k), pop, ref_rng));
  }
  EXPECT_EQ(plan_rng.Next(), ref_rng.Next());
}

TEST(PartnerPlanParityTest, UniformAfterDeathsMatches) {
  UniformEnvironment env(64);
  Population pop(64);
  Rng fail(3);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 11);
  // Mid-trial deaths: the identity fast path must drop out (version moved)
  // and the alive-table path must pick up the new membership.
  for (int i = 0; i < 20; ++i) pop.Kill(static_cast<HostId>(fail.UniformInt(64)));
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 12);
  pop.Revive(0);
  pop.Revive(13);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 13);
}

TEST(PartnerPlanParityTest, UniformDegeneratePopulations) {
  UniformEnvironment env(2);
  Population pop(2);
  pop.Kill(1);
  ExpectPlanMatchesSamplePeer(env, pop, {0}, 5);  // single alive host
  pop.Kill(0);
  ExpectPlanMatchesSamplePeer(env, pop, {}, 5);  // nobody alive
}

// ------------------------------------------------------------ spatial ---

TEST(PartnerPlanParityTest, SpatialMatchesSamplePeer) {
  SpatialGridEnvironment env(8, 8);
  Population pop(64);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 21);
}

TEST(PartnerPlanParityTest, SpatialAliveBitmapInvalidatesOnDeath) {
  SpatialGridEnvironment env(8, 8);
  Population pop(64);
  // Populate the env's per-round bitmap cache...
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 22);
  // ...then change membership. A stale bitmap would route walks through
  // dead hosts; the SamplePeer reference evaluates aliveness freshly.
  for (HostId id = 0; id < 32; ++id) pop.Kill(id);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 23);
  pop.Revive(9);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 24);
}

// ------------------------------------------------------- random graph ---

TEST(PartnerPlanParityTest, RandomGraphMatchesSamplePeer) {
  RandomGraphEnvironment env(60, 4, /*seed=*/77);
  Population pop(60);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 31);
}

TEST(PartnerPlanParityTest, RandomGraphFallbackRowsInvalidateOnDeath) {
  RandomGraphEnvironment env(60, 4, /*seed=*/77);
  Population pop(60);
  // Kill most hosts so the 4-attempt rejection falls through to the cached
  // alive-neighbor rows on nearly every slot.
  for (HostId id = 0; id < 45; ++id) pop.Kill(id);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 32);
  // Membership changes again: rows stamped with the old population version
  // must be rebuilt, not reused.
  for (HostId id = 45; id < 52; ++id) pop.Kill(id);
  pop.Revive(2);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 33);
  pop.Revive(10);
  pop.Revive(11);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 34);
}

// --------------------------------------------------------------- trace ---

ContactTrace MakeTwoPhaseTrace() {
  // Phase 1 (t < 100s): 0-1, 2-3 in contact. Phase 2 (t >= 100s): 0-2,
  // 1-3. Device 4 never meets anyone.
  ContactTrace trace(5);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(100));
  trace.AddContact(2, 3, FromSeconds(0), FromSeconds(100));
  trace.AddContact(0, 2, FromSeconds(100), FromSeconds(200));
  trace.AddContact(1, 3, FromSeconds(100), FromSeconds(200));
  trace.Finalize();
  return trace;
}

TEST(PartnerPlanParityTest, TraceMatchesSamplePeerAcrossAdvanceTo) {
  const ContactTrace trace = MakeTwoPhaseTrace();
  TraceEnvironment env(trace);
  Population pop(5);
  env.AdvanceTo(FromSeconds(50));
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 41);
  // The plan in phase 1 must only pair within {0,1} and {2,3}.
  {
    PartnerPlan plan;
    plan.Reset({0, 2, 4}, 1);
    Rng rng(42);
    env.BuildPlan(pop, rng, &plan);
    EXPECT_EQ(plan.partner(0), 1);
    EXPECT_EQ(plan.partner(1), 3);
    EXPECT_EQ(plan.partner(2), kInvalidHost);
  }
  // AdvanceTo flips the adjacency; cached alive-neighbor rows stamped with
  // the old topology epoch must be rebuilt.
  env.AdvanceTo(FromSeconds(150));
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 43);
  {
    PartnerPlan plan;
    plan.Reset({0, 1}, 1);
    Rng rng(44);
    env.BuildPlan(pop, rng, &plan);
    EXPECT_EQ(plan.partner(0), 2);
    EXPECT_EQ(plan.partner(1), 3);
  }
}

TEST(PartnerPlanParityTest, TraceFallbackRowsInvalidateOnDeathMidTrial) {
  // A dense clique trace so hosts have several neighbors and the fallback
  // path (first 4 picks dead) is actually reachable.
  ContactTrace trace(8);
  for (HostId a = 0; a < 8; ++a) {
    for (HostId b = a + 1; b < 8; ++b) {
      trace.AddContact(a, b, FromSeconds(0), FromSeconds(1000));
    }
  }
  trace.Finalize();
  TraceEnvironment env(trace);
  Population pop(8);
  env.AdvanceTo(FromSeconds(10));
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 51);
  // Kill most of the clique: rejection now almost always falls through to
  // the cached alive rows, and those must track each further death.
  for (HostId id = 2; id < 7; ++id) pop.Kill(id);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 52);
  pop.Kill(7);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 53);
  pop.Revive(4);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 54);
}

// ----------------------------------------------------- default adapter ---

/// An Environment that only implements the v1 interface: BuildPlan must
/// come from the base-class default adapter.
class MinimalEnvironment : public Environment {
 public:
  explicit MinimalEnvironment(int n) : n_(n) {}
  int num_hosts() const override { return n_; }
  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override {
    return pop.SampleAliveExcept(i, rng);
  }
  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override {
    for (const HostId id : pop.alive_ids()) {
      if (id != i) out->push_back(id);
    }
  }

 private:
  int n_;
};

TEST(PartnerPlanParityTest, DefaultAdapterDelegatesToSamplePeer) {
  MinimalEnvironment env(16);
  Population pop(16);
  pop.Kill(3);
  ExpectPlanMatchesSamplePeer(env, pop, AliveInitiators(pop), 61);
}

TEST(PopulationVersionTest, BumpsOnlyOnEffectiveMutation) {
  Population pop(4);
  EXPECT_EQ(pop.version(), 0u);
  pop.Revive(2);  // already alive: no-op
  EXPECT_EQ(pop.version(), 0u);
  pop.Kill(2);
  EXPECT_EQ(pop.version(), 1u);
  pop.Kill(2);  // already dead: no-op
  EXPECT_EQ(pop.version(), 1u);
  pop.Revive(2);
  EXPECT_EQ(pop.version(), 2u);
}

}  // namespace
}  // namespace dynagg
