#include "env/trace_env.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/contact_trace.h"
#include "sim/population.h"

namespace dynagg {
namespace {

ContactTrace MakeSimpleTrace() {
  // 0-1 in contact during [10s, 100s); 1-2 during [50s, 150s).
  ContactTrace trace(4);
  trace.AddContact(0, 1, FromSeconds(10), FromSeconds(100));
  trace.AddContact(1, 2, FromSeconds(50), FromSeconds(150));
  trace.Finalize();
  return trace;
}

TEST(TraceEnvTest, AdjacencyFollowsEvents) {
  const ContactTrace trace = MakeSimpleTrace();
  TraceEnvironment env(trace);
  EXPECT_EQ(env.Degree(0), 0);
  env.AdvanceTo(FromSeconds(10));
  EXPECT_EQ(env.Degree(0), 1);
  EXPECT_EQ(env.Degree(1), 1);
  env.AdvanceTo(FromSeconds(60));
  EXPECT_EQ(env.Degree(1), 2);
  env.AdvanceTo(FromSeconds(100));
  EXPECT_EQ(env.Degree(0), 0);  // 0-1 link dropped
  EXPECT_EQ(env.Degree(1), 1);
  env.AdvanceTo(FromSeconds(150));
  EXPECT_EQ(env.num_edges(), 0);
}

TEST(TraceEnvTest, SamplePeerRespectsRange) {
  const ContactTrace trace = MakeSimpleTrace();
  TraceEnvironment env(trace);
  Population pop(4);
  Rng rng(1);
  env.AdvanceTo(FromSeconds(60));
  // Host 0's only neighbor is 1.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.SamplePeer(0, pop, rng), 1);
  // Host 3 is isolated.
  EXPECT_EQ(env.SamplePeer(3, pop, rng), kInvalidHost);
  // Host 1 sees 0 and 2.
  bool saw0 = false;
  bool saw2 = false;
  for (int i = 0; i < 200; ++i) {
    const HostId p = env.SamplePeer(1, pop, rng);
    saw0 |= (p == 0);
    saw2 |= (p == 2);
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw2);
}

TEST(TraceEnvTest, SamplePeerSkipsDeadDevices) {
  const ContactTrace trace = MakeSimpleTrace();
  TraceEnvironment env(trace);
  Population pop(4);
  pop.Kill(0);
  Rng rng(2);
  env.AdvanceTo(FromSeconds(60));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.SamplePeer(1, pop, rng), 2);
}

TEST(TraceEnvTest, OverlappingContactsRefCount) {
  ContactTrace trace(2);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(100));
  trace.AddContact(0, 1, FromSeconds(50), FromSeconds(150));
  trace.Finalize();
  TraceEnvironment env(trace);
  env.AdvanceTo(FromSeconds(60));
  EXPECT_EQ(env.Degree(0), 1);  // one logical link, not two
  env.AdvanceTo(FromSeconds(100));
  EXPECT_EQ(env.Degree(0), 1);  // second interval still active
  env.AdvanceTo(FromSeconds(150));
  EXPECT_EQ(env.Degree(0), 0);
}

TEST(TraceEnvTest, GroupsUseTenMinuteWindow) {
  ContactTrace trace(3);
  // 0-1 contact ends at t=600s; they remain grouped until t=1200s.
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(600));
  trace.Finalize();
  TraceEnvironment env(trace, FromMinutes(10));
  env.AdvanceTo(FromSeconds(700));
  auto labels = env.CurrentGroups();
  EXPECT_EQ(labels[0], labels[1]);  // recent edge keeps them "nearby"
  EXPECT_NE(labels[0], labels[2]);
  env.AdvanceTo(FromSeconds(1201));
  labels = env.CurrentGroups();
  EXPECT_NE(labels[0], labels[1]);  // window expired
}

TEST(TraceEnvTest, GroupsIncludeTransitivePaths) {
  // Per the paper, "nearby" is path connectivity over the window union:
  // 0-1 recently dropped plus 1-2 live must group {0,1,2}.
  ContactTrace trace(4);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(100));
  trace.AddContact(1, 2, FromSeconds(90), FromSeconds(500));
  trace.Finalize();
  TraceEnvironment env(trace, FromMinutes(10));
  env.AdvanceTo(FromSeconds(200));
  const auto labels = env.CurrentGroups();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[3], labels[0]);
}

TEST(TraceEnvTest, AverageGroupSizeHostWeighted) {
  ContactTrace trace(4);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(100));
  trace.AddContact(1, 2, FromSeconds(0), FromSeconds(100));
  trace.Finalize();
  TraceEnvironment env(trace, FromSeconds(0));
  env.AdvanceTo(FromSeconds(50));
  // Groups: {0,1,2} and {3}: host-weighted mean = (3+3+3+1)/4 = 2.5.
  EXPECT_DOUBLE_EQ(env.AverageGroupSize(), 2.5);
}

TEST(TraceEnvTest, ZeroWindowDropsEdgesImmediately) {
  ContactTrace trace(2);
  trace.AddContact(0, 1, FromSeconds(0), FromSeconds(10));
  trace.Finalize();
  TraceEnvironment env(trace, FromSeconds(0));
  env.AdvanceTo(FromSeconds(10));
  const auto labels = env.CurrentGroups();
  // The edge went down exactly at t=10 with a zero window: still within
  // horizon (>= now - 0), so the pair remains grouped at this instant...
  EXPECT_EQ(labels[0], labels[1]);
  env.AdvanceTo(FromSeconds(11));
  const auto labels2 = env.CurrentGroups();
  EXPECT_NE(labels2[0], labels2[1]);
}

TEST(TraceEnvTest, AppendNeighborsMatchesDegree) {
  const ContactTrace trace = MakeSimpleTrace();
  TraceEnvironment env(trace);
  Population pop(4);
  env.AdvanceTo(FromSeconds(60));
  std::vector<HostId> neighbors;
  env.AppendNeighbors(1, pop, &neighbors);
  EXPECT_EQ(static_cast<int>(neighbors.size()), env.Degree(1));
}

}  // namespace
}  // namespace dynagg
