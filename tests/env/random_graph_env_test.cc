#include "env/random_graph_env.h"

#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum.h"
#include "common/rng.h"
#include "env/connectivity.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(RandomGraphEnvTest, DegreesNearTarget) {
  RandomGraphEnvironment env(500, 8, /*seed=*/1);
  double total_degree = 0;
  for (HostId id = 0; id < 500; ++id) {
    EXPECT_LE(env.Degree(id), 8);
    total_degree += env.Degree(id);
  }
  // Configuration-model rejections lose only a few edges.
  EXPECT_GT(total_degree / 500.0, 7.0);
  EXPECT_EQ(static_cast<int64_t>(total_degree), 2 * env.num_edges());
}

TEST(RandomGraphEnvTest, AdjacencyIsSymmetric) {
  RandomGraphEnvironment env(100, 4, 2);
  Population pop(100);
  for (HostId a = 0; a < 100; ++a) {
    std::vector<HostId> nbrs;
    env.AppendNeighbors(a, pop, &nbrs);
    for (const HostId b : nbrs) {
      std::vector<HostId> back;
      env.AppendNeighbors(b, pop, &back);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << a << "<->" << b;
    }
  }
}

TEST(RandomGraphEnvTest, NoSelfLoopsOrDuplicates) {
  RandomGraphEnvironment env(200, 6, 3);
  Population pop(200);
  for (HostId a = 0; a < 200; ++a) {
    std::vector<HostId> nbrs;
    env.AppendNeighbors(a, pop, &nbrs);
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
    EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), a), nbrs.end());
  }
}

TEST(RandomGraphEnvTest, DeterministicForSeed) {
  RandomGraphEnvironment a(100, 4, 42);
  RandomGraphEnvironment b(100, 4, 42);
  Population pop(100);
  for (HostId id = 0; id < 100; ++id) {
    std::vector<HostId> na;
    std::vector<HostId> nb;
    a.AppendNeighbors(id, pop, &na);
    b.AppendNeighbors(id, pop, &nb);
    EXPECT_EQ(na, nb);
  }
}

TEST(RandomGraphEnvTest, SamplePeerReturnsAliveNeighbors) {
  RandomGraphEnvironment env(100, 5, 4);
  Population pop(100);
  for (HostId id = 0; id < 100; id += 2) pop.Kill(id);
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const HostId i = 1 + 2 * static_cast<HostId>(rng.UniformInt(50));
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    EXPECT_TRUE(pop.IsAlive(peer));
    std::vector<HostId> nbrs;
    env.AppendNeighbors(i, pop, &nbrs);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), peer), nbrs.end());
  }
}

TEST(RandomGraphEnvTest, DegreeEightGraphIsConnected) {
  // k-regular random graphs are connected whp for k >= 3; verify at k = 8.
  RandomGraphEnvironment env(1000, 8, 6);
  Population pop(1000);
  std::vector<std::pair<HostId, HostId>> edges;
  std::vector<HostId> nbrs;
  for (HostId a = 0; a < 1000; ++a) {
    nbrs.clear();
    env.AppendNeighbors(a, pop, &nbrs);
    for (const HostId b : nbrs) {
      if (a < b) edges.push_back({a, b});
    }
  }
  const auto labels = ConnectedComponents(1000, edges);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(RandomGraphEnvTest, PushSumConvergesOnSparseGraph) {
  const int n = 1000;
  Rng vrng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  RandomGraphEnvironment env(n, 6, 8);
  Population pop(n);
  Rng rng(9);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_LT(rms, 1.0);
}

TEST(RandomGraphEnvTest, LowerDegreeConvergesSlower) {
  auto rounds_to_converge = [](int degree) {
    const int n = 500;
    Rng vrng(10);
    std::vector<double> values(n);
    for (auto& v : values) v = vrng.UniformDouble(0, 100);
    PushSumSwarm swarm(values, GossipMode::kPushPull);
    RandomGraphEnvironment env(n, degree, 11);
    Population pop(n);
    Rng rng(12);
    const double truth = TrueAverage(values, pop);
    for (int round = 0; round < 300; ++round) {
      swarm.RunRound(env, pop, rng);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      if (rms < 1.0) return round + 1;
    }
    return 300;
  };
  EXPECT_LE(rounds_to_converge(16), rounds_to_converge(3));
}

}  // namespace
}  // namespace dynagg
