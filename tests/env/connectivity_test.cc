#include "env/connectivity.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_EQ(uf.SetSize(0), 2);
  EXPECT_EQ(uf.SetSize(2), 1);
}

TEST(UnionFindTest, TransitiveUnion) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
  EXPECT_EQ(uf.SetSize(3), 4);
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFindTest, ChainCollapse) {
  const int n = 1000;
  UnionFind uf(n);
  for (int i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  EXPECT_EQ(uf.SetSize(0), n);
  EXPECT_EQ(uf.Find(0), uf.Find(n - 1));
}

TEST(ConnectedComponentsTest, NoEdges) {
  const auto labels = ConnectedComponents(4, {});
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ConnectedComponentsTest, TwoComponents) {
  const std::vector<std::pair<HostId, HostId>> edges = {{0, 1}, {2, 3}};
  const auto labels = ConnectedComponents(5, edges);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
  EXPECT_NE(labels[4], labels[2]);
}

TEST(ConnectedComponentsTest, LabelsAreDenseAndOrdered) {
  const std::vector<std::pair<HostId, HostId>> edges = {{3, 4}, {0, 1}};
  const auto labels = ConnectedComponents(5, edges);
  // First appearance order by vertex index: {0,1} -> 0, {2} -> 1, {3,4} -> 2.
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 1);
  EXPECT_EQ(labels[3], 2);
  EXPECT_EQ(labels[4], 2);
}

TEST(ConnectedComponentsTest, FullClique) {
  std::vector<std::pair<HostId, HostId>> edges;
  for (HostId a = 0; a < 8; ++a) {
    for (HostId b = a + 1; b < 8; ++b) edges.push_back({a, b});
  }
  const auto labels = ConnectedComponents(8, edges);
  for (const int l : labels) EXPECT_EQ(l, 0);
}

TEST(ComponentSizesTest, CountsMembers) {
  const std::vector<int> labels = {0, 0, 1, 2, 2, 2};
  const auto sizes = ComponentSizes(labels);
  EXPECT_EQ(sizes, (std::vector<int>{2, 1, 3}));
}

TEST(ComponentSizesTest, EmptyLabels) {
  EXPECT_TRUE(ComponentSizes({}).empty());
}

}  // namespace
}  // namespace dynagg
