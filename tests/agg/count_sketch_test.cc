#include "agg/count_sketch.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(CountSketchNodeTest, ZeroMultiplicityIsEmpty) {
  CountSketchNode node;
  node.Init(CountSketchParams{}, /*host_key=*/1, /*multiplicity=*/0);
  EXPECT_EQ(node.sketch().PopCount(), 0);
}

TEST(CountSketchNodeTest, MultiplicityAddsObjects) {
  CountSketchNode node;
  node.Init(CountSketchParams{}, 1, 100);
  EXPECT_GT(node.sketch().PopCount(), 0);
}

TEST(CountSketchNodeTest, InitIsDeterministicPerHostKey) {
  CountSketchNode a;
  CountSketchNode b;
  a.Init(CountSketchParams{}, 7, 10);
  b.Init(CountSketchParams{}, 7, 10);
  EXPECT_TRUE(a.sketch() == b.sketch());
  CountSketchNode c;
  c.Init(CountSketchParams{}, 8, 10);
  EXPECT_FALSE(a.sketch() == c.sketch());
}

TEST(CountSketchSwarmTest, AllHostsConvergeToHostCount) {
  const int n = 2000;
  const std::vector<int64_t> ones(n, 1);
  CountSketchSwarm swarm(ones, CountSketchParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  // After convergence every host holds the identical union sketch.
  const double est0 = swarm.EstimateCount(0);
  for (HostId id = 1; id < n; id += 97) {
    EXPECT_DOUBLE_EQ(swarm.EstimateCount(id), est0);
  }
  EXPECT_NEAR(est0, n, 0.3 * n);
}

TEST(CountSketchSwarmTest, SumViaMultipleInsertions) {
  // Section IV.B: registering value v as v identifiers estimates the sum.
  const int n = 500;
  std::vector<int64_t> values(n);
  Rng vrng(2);
  int64_t true_sum = 0;
  for (auto& v : values) {
    v = static_cast<int64_t>(vrng.UniformInt(20));
    true_sum += v;
  }
  CountSketchSwarm swarm(values, CountSketchParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(3);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), static_cast<double>(true_sum),
              0.3 * static_cast<double>(true_sum));
}

TEST(CountSketchSwarmTest, EstimateIsMonotoneNondecreasing) {
  const int n = 500;
  const std::vector<int64_t> ones(n, 1);
  CountSketchSwarm swarm(ones, CountSketchParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  double prev = swarm.EstimateCount(0);
  for (int round = 0; round < 20; ++round) {
    swarm.RunRound(env, pop, rng);
    const double now = swarm.EstimateCount(0);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(CountSketchSwarmTest, DoesNotForgetDepartedHosts) {
  // The static sketch's defining weakness (Section II.B): after failure the
  // estimate stays at the old count.
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  CountSketchSwarm swarm(ones, CountSketchParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(5);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  const double before = swarm.EstimateCount(0);
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.EstimateCount(0), before);
}

TEST(CountSketchSwarmTest, PushModeAlsoConverges) {
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  CountSketchParams params;
  params.mode = GossipMode::kPush;
  CountSketchSwarm swarm(ones, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), n, 0.35 * n);
}

TEST(CountSketchSwarmTest, NewArrivalsRaiseTheEstimate) {
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  CountSketchSwarm swarm(ones, CountSketchParams{});
  UniformEnvironment env(n);
  Population pop(n);
  // Start with only half the hosts alive.
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  Rng rng(7);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  const double before = swarm.EstimateCount(0);
  for (HostId id = n / 2; id < n; ++id) pop.Revive(id);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  const double after = swarm.EstimateCount(0);
  EXPECT_GT(after, before * 1.3);
}

}  // namespace
}  // namespace dynagg
