#include "agg/push_sum.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

TEST(PushSumNodeTest, InitialEstimateIsOwnValue) {
  PushSumNode node;
  node.Init(42.0);
  EXPECT_DOUBLE_EQ(node.Estimate(), 42.0);
  EXPECT_DOUBLE_EQ(node.mass().weight, 1.0);
  EXPECT_DOUBLE_EQ(node.mass().value, 42.0);
}

TEST(PushSumNodeTest, EmitHalvesAndDepositsSelf) {
  PushSumNode node;
  node.Init(10.0);
  const Mass half = node.EmitPushHalf();
  EXPECT_DOUBLE_EQ(half.weight, 0.5);
  EXPECT_DOUBLE_EQ(half.value, 5.0);
  node.EndRound();  // only the self-half arrives
  EXPECT_DOUBLE_EQ(node.mass().weight, 0.5);
  EXPECT_DOUBLE_EQ(node.mass().value, 5.0);
  EXPECT_DOUBLE_EQ(node.Estimate(), 10.0);  // ratio unchanged
}

TEST(PushSumNodeTest, TwoNodeExchangeConservesMass) {
  PushSumNode a;
  PushSumNode b;
  a.Init(0.0);
  b.Init(100.0);
  for (int round = 0; round < 10; ++round) {
    const Mass from_a = a.EmitPushHalf();
    const Mass from_b = b.EmitPushHalf();
    b.Deposit(from_a);
    a.Deposit(from_b);
    a.EndRound();
    b.EndRound();
    EXPECT_NEAR(a.mass().weight + b.mass().weight, 2.0, 1e-12);
    EXPECT_NEAR(a.mass().value + b.mass().value, 100.0, 1e-12);
  }
  EXPECT_NEAR(a.Estimate(), 50.0, 1e-6);
  EXPECT_NEAR(b.Estimate(), 50.0, 1e-6);
}

TEST(PushSumNodeTest, PushPullExchangeEqualizes) {
  PushSumNode a;
  PushSumNode b;
  a.Init(10.0);
  b.Init(30.0);
  PushSumNode::Exchange(a, b);
  EXPECT_DOUBLE_EQ(a.mass().weight, 1.0);
  EXPECT_DOUBLE_EQ(a.mass().value, 20.0);
  EXPECT_DOUBLE_EQ(b.mass().value, 20.0);
  EXPECT_DOUBLE_EQ(a.Estimate(), 20.0);
  EXPECT_DOUBLE_EQ(b.Estimate(), 20.0);
}

TEST(PushSumSwarmTest, ConvergesToAverageUnderPush) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  PushSumSwarm swarm(values, GossipMode::kPush);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_LT(rms, 0.01);
}

TEST(PushSumSwarmTest, ConvergesToAverageUnderPushPull) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 3);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_LT(rms, 0.01);
}

TEST(PushSumSwarmTest, MassConservedExactlyWithoutFailures) {
  const int n = 200;
  const std::vector<double> values = UniformValues(n, 5);
  double value_sum = 0.0;
  for (const double v : values) value_sum += v;
  for (const GossipMode mode : {GossipMode::kPush, GossipMode::kPushPull}) {
    PushSumSwarm swarm(values, mode);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(6);
    for (int round = 0; round < 50; ++round) {
      swarm.RunRound(env, pop, rng);
      const Mass total = swarm.TotalAliveMass(pop);
      ASSERT_NEAR(total.weight, n, 1e-9 * n);
      ASSERT_NEAR(total.value, value_sum, 1e-9 * value_sum);
    }
  }
}

TEST(PushSumSwarmTest, ErrorDecaysMonotonically) {
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 7);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(8);
  const double truth = TrueAverage(values, pop);
  double prev = 1e18;
  for (int round = 0; round < 20; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    EXPECT_LT(rms, prev * 1.05);  // allow tiny stochastic wiggle
    prev = rms;
  }
}

TEST(PushSumSwarmTest, StaticProtocolKeepsDepartedMassBias) {
  // The failure mode that motivates the paper: kill the top-valued half and
  // classic Push-Sum keeps converging towards the *old* average.
  const int n = 2000;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = (i < n / 2) ? 0.0 : 100.0;
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(9);
  for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
  // Kill every host with value 100 (ids n/2..n-1).
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double new_truth = TrueAverage(values, pop);  // now 0
  EXPECT_DOUBLE_EQ(new_truth, 0.0);
  const double rms = RmsDeviationOverAlive(
      pop, new_truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_GT(rms, 25.0);  // stuck near the stale average of 50
}

TEST(PushSumSwarmTest, LonelyHostKeepsOwnValue) {
  const std::vector<double> values = {7.0};
  PushSumSwarm swarm(values, GossipMode::kPush);
  UniformEnvironment env(1);
  Population pop(1);
  Rng rng(10);
  for (int round = 0; round < 5; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.Estimate(0), 7.0);
}

}  // namespace
}  // namespace dynagg
