// Push-flow unit tests: flow conservation (the effective masses always
// sum to the initial total once every view is consistent), convergence of
// the synchronous rounds, self-healing after dropped messages (the next
// cumulative flow on the same directed edge restores the receiver's
// view), and the sequence-number guard against reordered deliveries.

#include "agg/push_flow.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "net/message.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

double TotalEffectiveMass(const PushFlowSwarm& swarm) {
  double total = 0.0;
  for (HostId i = 0; i < swarm.size(); ++i) total += swarm.effective_mass(i);
  return total;
}

double TotalEffectiveWeight(const PushFlowSwarm& swarm) {
  double total = 0.0;
  for (HostId i = 0; i < swarm.size(); ++i) {
    total += swarm.effective_weight(i);
  }
  return total;
}

double MaxEstimateError(const PushFlowSwarm& swarm, double truth) {
  double worst = 0.0;
  for (HostId i = 0; i < swarm.size(); ++i) {
    worst = std::max(worst, std::abs(swarm.Estimate(i) - truth));
  }
  return worst;
}

TEST(PushFlowSwarmTest, InitialEstimateIsOwnValue) {
  PushFlowSwarm swarm({3.0, 7.0});
  EXPECT_DOUBLE_EQ(swarm.Estimate(0), 3.0);
  EXPECT_DOUBLE_EQ(swarm.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(swarm.effective_weight(0), 1.0);
}

TEST(PushFlowSwarmTest, SynchronousRoundsConvergeAndConserve) {
  const int n = 256;
  const std::vector<double> values = UniformValues(n, 1);
  const double truth =
      std::accumulate(values.begin(), values.end(), 0.0) / n;
  PushFlowSwarm swarm(values);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 60; ++round) {
    swarm.RunRound(env, pop, rng);
    // With every message delivered, flow conservation is exact each round.
    EXPECT_NEAR(TotalEffectiveMass(swarm), truth * n, 1e-6);
    EXPECT_NEAR(TotalEffectiveWeight(swarm), n, 1e-9);
  }
  EXPECT_LT(MaxEstimateError(swarm, truth), 1e-6);
}

TEST(PushFlowSwarmTest, AsyncTickPlansOneMessagePerMatchedHost) {
  const int n = 64;
  PushFlowSwarm swarm(UniformValues(n, 3));
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  std::vector<net::Message> wave;
  swarm.PlanAsyncTick(env, pop, rng, &wave);
  EXPECT_EQ(wave.size(), static_cast<size_t>(n));
  for (const net::Message& m : wave) {
    EXPECT_NE(m.src, m.dst);
    EXPECT_GT(m.b, 0.0);  // some denominator flow was pushed
    EXPECT_EQ(m.tag, 1u);  // first push on every directed edge
  }
  // Nothing delivered yet: the planned outflow is in flight, so the
  // network total is short by exactly the undelivered flow...
  EXPECT_LT(TotalEffectiveWeight(swarm), n);
  // ...and delivering the wave restores conservation exactly.
  for (const net::Message& m : wave) swarm.DeliverFlow(m);
  EXPECT_NEAR(TotalEffectiveWeight(swarm), n, 1e-9);
}

TEST(PushFlowSwarmTest, LostMessageSelfHealsOnNextPushOverSameEdge) {
  // Two hosts pushing at each other: drop the first message from host 0,
  // then let a later push over the same directed edge restate the
  // cumulative flow. The receiver's view — and with it global
  // conservation — must be fully repaired, not just incrementally patched.
  PushFlowSwarm swarm({0.0, 100.0});
  UniformEnvironment env(2);
  Population pop(2);
  Rng rng(5);

  std::vector<net::Message> wave;
  swarm.PlanAsyncTick(env, pop, rng, &wave);
  ASSERT_EQ(wave.size(), 2u);
  for (const net::Message& m : wave) {
    if (m.src != 0) swarm.DeliverFlow(m);  // drop host 0's first push
  }
  EXPECT_LT(TotalEffectiveWeight(swarm), 2.0);

  for (int tick = 0; tick < 4; ++tick) {
    wave.clear();
    swarm.PlanAsyncTick(env, pop, rng, &wave);
    for (const net::Message& m : wave) swarm.DeliverFlow(m);
  }
  EXPECT_NEAR(TotalEffectiveMass(swarm), 100.0, 1e-9);
  EXPECT_NEAR(TotalEffectiveWeight(swarm), 2.0, 1e-9);
  EXPECT_NEAR(swarm.Estimate(0), 50.0, 1.0);
  EXPECT_NEAR(swarm.Estimate(1), 50.0, 1.0);
}

TEST(PushFlowSwarmTest, StaleSequenceNumbersAreIgnored) {
  PushFlowSwarm swarm({10.0, 20.0});
  // Hand-crafted cumulative flows from host 0 toward host 1, delivered
  // out of order: the newer flow (seq 2) lands first, the overtaken one
  // (seq 1) must be dropped instead of rolling the view backwards.
  const net::Message newer{0, 1, 8.0, 0.75, 2};
  const net::Message older{0, 1, 5.0, 0.5, 1};
  swarm.DeliverFlow(newer);
  const double mass_after_newer = swarm.effective_mass(1);
  const double weight_after_newer = swarm.effective_weight(1);
  EXPECT_DOUBLE_EQ(mass_after_newer, 28.0);
  EXPECT_DOUBLE_EQ(weight_after_newer, 1.75);

  swarm.DeliverFlow(older);
  EXPECT_DOUBLE_EQ(swarm.effective_mass(1), mass_after_newer);
  EXPECT_DOUBLE_EQ(swarm.effective_weight(1), weight_after_newer);

  // A genuinely newer restatement still applies, as a delta on the view.
  swarm.DeliverFlow(net::Message{0, 1, 9.0, 1.0, 3});
  EXPECT_DOUBLE_EQ(swarm.effective_mass(1), 29.0);
  EXPECT_DOUBLE_EQ(swarm.effective_weight(1), 2.0);
}

TEST(PushFlowSwarmTest, DuplicateDeliveryIsIdempotent) {
  PushFlowSwarm swarm({10.0, 20.0});
  const net::Message m{0, 1, 5.0, 0.5, 1};
  swarm.DeliverFlow(m);
  const double mass = swarm.effective_mass(1);
  swarm.DeliverFlow(m);  // retransmission of the same cumulative flow
  EXPECT_DOUBLE_EQ(swarm.effective_mass(1), mass);
}

}  // namespace
}  // namespace dynagg
