#include "agg/full_transfer.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

double SwarmRms(const FullTransferSwarm& swarm, const Population& pop,
                double truth) {
  return RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
}

TEST(FullTransferNodeTest, ParcelsSplitRevertedMassEvenly) {
  FullTransferNode node;
  node.Init(20.0, /*window=*/3);
  const Mass p1 = node.EmitParcel(/*lambda=*/0.0, /*parcels=*/4);
  const Mass p2 = node.EmitParcel(0.0, 4);
  EXPECT_DOUBLE_EQ(p1.weight, 0.25);
  EXPECT_DOUBLE_EQ(p1.value, 5.0);
  EXPECT_DOUBLE_EQ(p2.weight, 0.25);
  EXPECT_DOUBLE_EQ(p2.value, 5.0);
  // All mass has left the node.
  EXPECT_DOUBLE_EQ(node.mass().weight, 0.0);
}

TEST(FullTransferNodeTest, ReversionReseedsEmptyNode) {
  FullTransferNode node;
  node.Init(40.0, 3);
  // Drain the node completely, receive nothing.
  for (int p = 0; p < 2; ++p) node.EmitParcel(0.5, 2);
  node.EndRound();
  EXPECT_DOUBLE_EQ(node.mass().weight, 0.0);
  // Next round's emission still carries the lambda fraction of the initial
  // mass: the host cannot permanently vanish from the computation.
  const Mass parcel = node.EmitParcel(0.5, 1);
  EXPECT_DOUBLE_EQ(parcel.weight, 0.5);
  EXPECT_DOUBLE_EQ(parcel.value, 20.0);
}

TEST(FullTransferNodeTest, EstimateSkipsEmptyRounds) {
  FullTransferNode node;
  node.Init(10.0, /*window=*/2);
  node.Deposit(Mass{1.0, 70.0});
  node.EndRound();
  EXPECT_DOUBLE_EQ(node.Estimate(), 70.0);
  // A round with no received mass must not dilute the window.
  node.EmitParcel(0.0, 1);
  node.EndRound();
  EXPECT_DOUBLE_EQ(node.Estimate(), 70.0);
}

TEST(FullTransferNodeTest, WindowAveragesRecentRounds) {
  FullTransferNode node;
  node.Init(0.0, /*window=*/2);
  node.Deposit(Mass{1.0, 10.0});
  node.EndRound();
  node.EmitParcel(0.0, 1);
  node.Deposit(Mass{1.0, 30.0});
  node.EndRound();
  // Window holds <1,10> and <1,30>: estimate 40/2 = 20.
  EXPECT_DOUBLE_EQ(node.Estimate(), 20.0);
  // A third mass-bearing round evicts the oldest entry.
  node.EmitParcel(0.0, 1);
  node.Deposit(Mass{1.0, 50.0});
  node.EndRound();
  EXPECT_DOUBLE_EQ(node.Estimate(), 40.0);  // (30 + 50) / 2
}

TEST(FullTransferNodeTest, EstimateBeforeAnyMassIsInitialValue) {
  FullTransferNode node;
  node.Init(123.0, 3);
  EXPECT_DOUBLE_EQ(node.Estimate(), 123.0);
}

TEST(FullTransferSwarmTest, ConvergesToAverage) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  FullTransferSwarm swarm(values,
                          {.lambda = 0.1, .parcels = 4, .window = 3});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 50; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_LT(SwarmRms(swarm, pop, truth), 3.0);
}

TEST(FullTransferSwarmTest, MassConservedWithStableMembership) {
  const int n = 200;
  const std::vector<double> values = UniformValues(n, 3);
  double value_sum = 0.0;
  for (const double v : values) value_sum += v;
  FullTransferSwarm swarm(values,
                          {.lambda = 0.2, .parcels = 4, .window = 3});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 40; ++round) {
    swarm.RunRound(env, pop, rng);
    const Mass total = swarm.TotalAliveMass(pop);
    ASSERT_NEAR(total.weight, n, 1e-9 * n);
    ASSERT_NEAR(total.value, value_sum, 1e-9 * value_sum);
  }
}

TEST(FullTransferSwarmTest, LowerFloorThanBasicRevertAfterFailure) {
  // Fig 10b's claim: at equal lambda, Full-Transfer converges to a smaller
  // residual error than the basic reverting protocol after a correlated
  // failure, because estimates no longer correlate with the host's own
  // initial value.
  const int n = 4000;
  const std::vector<double> values = UniformValues(n, 5);
  UniformEnvironment env(n);
  const double lambda = 0.5;

  auto kill_top_half = [&](Population& pop) {
    std::vector<HostId> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&](HostId a, HostId b) {
      return values[a] > values[b];
    });
    for (int i = 0; i < n / 2; ++i) pop.Kill(ids[i]);
  };

  FullTransferSwarm ft(values, {.lambda = lambda, .parcels = 4, .window = 3});
  Population ft_pop(n);
  Rng ft_rng(6);
  for (int round = 0; round < 20; ++round) ft.RunRound(env, ft_pop, ft_rng);
  kill_top_half(ft_pop);
  for (int round = 0; round < 40; ++round) ft.RunRound(env, ft_pop, ft_rng);
  const double ft_rms = SwarmRms(ft, ft_pop, TrueAverage(values, ft_pop));

  PushSumRevertSwarm basic(values,
                           {.lambda = lambda, .mode = GossipMode::kPush});
  Population basic_pop(n);
  Rng basic_rng(6);
  for (int round = 0; round < 20; ++round) {
    basic.RunRound(env, basic_pop, basic_rng);
  }
  kill_top_half(basic_pop);
  for (int round = 0; round < 40; ++round) {
    basic.RunRound(env, basic_pop, basic_rng);
  }
  const double basic_rms = RmsDeviationOverAlive(
      basic_pop, TrueAverage(values, basic_pop),
      [&](HostId id) { return basic.Estimate(id); });

  EXPECT_LT(ft_rms, basic_rms);
}

TEST(FullTransferSwarmTest, SingleParcelSingleWindowStillWorks) {
  const int n = 500;
  const std::vector<double> values = UniformValues(n, 7);
  FullTransferSwarm swarm(values,
                          {.lambda = 0.1, .parcels = 1, .window = 1});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(8);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_LT(SwarmRms(swarm, pop, TrueAverage(values, pop)), 25.0);
}

}  // namespace
}  // namespace dynagg
