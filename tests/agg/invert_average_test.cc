#include "agg/invert_average.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

TEST(InvertAverageTest, SumIsCountTimesAverage) {
  const std::vector<double> values = {1, 2, 3};
  InvertAverageSwarm swarm(values, InvertAverageParams{});
  EXPECT_DOUBLE_EQ(swarm.EstimateSum(0),
                   swarm.EstimateNetworkSize(0) * swarm.EstimateAverage(0));
}

TEST(InvertAverageTest, ConvergesToTrueSum) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  InvertAverageParams params;
  params.psr.lambda = 0.01;
  InvertAverageSwarm swarm(values, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double truth = TrueSum(values, pop);
  // Errors multiply: sketch (~10-30%) dominates. Accept 35%.
  EXPECT_NEAR(swarm.EstimateSum(0), truth, 0.35 * truth);
}

TEST(InvertAverageTest, NetworkSizeUsesMultiplicity) {
  const int n = 200;
  const std::vector<double> values = UniformValues(n, 3);
  InvertAverageParams params;
  params.count_multiplicity = 25;
  InvertAverageSwarm swarm(values, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateNetworkSize(0), n, 0.35 * n);
}

TEST(InvertAverageTest, TracksSumAfterCorrelatedFailure) {
  // Both components are dynamic, so the composed sum recovers after the
  // top-valued half leaves (unlike static sketch summation).
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 5);
  InvertAverageParams params;
  params.psr.lambda = 0.1;
  InvertAverageSwarm swarm(values, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  std::vector<HostId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(),
            [&](HostId a, HostId b) { return values[a] > values[b]; });
  for (int i = 0; i < n / 2; ++i) pop.Kill(ids[i]);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  const double truth = TrueSum(values, pop);
  // Old sum was ~4x the new one (half the hosts, half the mean); the
  // estimate must track the new sum within sketch error.
  EXPECT_NEAR(swarm.EstimateSum(0), truth, 0.45 * truth);
}

TEST(InvertAverageTest, PerHostAccessorsAgree) {
  const int n = 50;
  const std::vector<double> values = UniformValues(n, 7);
  InvertAverageSwarm swarm(values, InvertAverageParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(8);
  for (int round = 0; round < 10; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = 0; id < n; id += 7) {
    EXPECT_DOUBLE_EQ(swarm.EstimateAverage(id), swarm.psr().Estimate(id));
    EXPECT_DOUBLE_EQ(
        swarm.EstimateNetworkSize(id),
        swarm.csr().EstimateCount(id) /
            static_cast<double>(InvertAverageParams{}.count_multiplicity));
  }
}

}  // namespace
}  // namespace dynagg
