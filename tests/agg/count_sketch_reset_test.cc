#include "agg/count_sketch_reset.h"

#include <vector>

#include <gtest/gtest.h>

#include "agg/count_sketch.h"
#include "common/rng.h"
#include "common/wire.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

CsrParams SmallParams() {
  CsrParams p;
  p.bins = 16;
  p.levels = 16;
  return p;
}

TEST(CsrNodeTest, InitPinsOwnedSlotsToZero) {
  CountSketchResetNode node;
  node.Init(SmallParams(), /*host_key=*/3, /*multiplicity=*/5);
  EXPECT_FALSE(node.owned_slots().empty());
  for (const int32_t offset : node.owned_slots()) {
    EXPECT_EQ(node.counters()[offset], 0);
  }
  // Everything else is infinity.
  size_t infinite = 0;
  for (const uint8_t c : node.counters()) {
    if (c == kCsrInfinity) ++infinite;
  }
  EXPECT_EQ(infinite, node.counters().size() - node.owned_slots().size());
}

TEST(CsrNodeTest, AgeCountersKeepsOwnedAtZeroAndInfinityFixed) {
  CountSketchResetNode node;
  node.Init(SmallParams(), 1, 3);
  node.AgeCounters();
  node.AgeCounters();
  for (const int32_t offset : node.owned_slots()) {
    EXPECT_EQ(node.counters()[offset], 0);
  }
  for (size_t i = 0; i < node.counters().size(); ++i) {
    const bool owned =
        std::find(node.owned_slots().begin(), node.owned_slots().end(),
                  static_cast<int32_t>(i)) != node.owned_slots().end();
    if (!owned) {
      EXPECT_EQ(node.counters()[i], kCsrInfinity);
    }
  }
}

TEST(CsrNodeTest, AgeIncrementsFiniteCounters) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 1);
  b.Init(SmallParams(), 2, 1);
  // b learns a's zero counter, then ages it.
  b.MergeFrom(a);
  const int32_t a_slot = a.owned_slots()[0];
  EXPECT_EQ(b.counters()[a_slot], 0);
  b.AgeCounters();
  // a's slot may coincide with b's own slot; only check when distinct.
  if (a_slot != b.owned_slots()[0]) {
    EXPECT_EQ(b.counters()[a_slot], 1);
    b.AgeCounters();
    EXPECT_EQ(b.counters()[a_slot], 2);
  }
}

TEST(CsrNodeTest, CountersSaturateBelowInfinity) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 1);
  b.Init(SmallParams(), 2, 1);
  b.MergeFrom(a);
  for (int i = 0; i < 1000; ++i) b.AgeCounters();
  for (const uint8_t c : b.counters()) {
    EXPECT_TRUE(c == 0 || c == kCsrCounterCap || c == kCsrInfinity);
  }
}

TEST(CsrNodeTest, MergeTakesElementwiseMin) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 4);
  b.Init(SmallParams(), 2, 4);
  const std::vector<uint8_t> a_before = a.counters();
  const std::vector<uint8_t> b_before = b.counters();
  a.MergeFrom(b);
  for (size_t i = 0; i < a_before.size(); ++i) {
    EXPECT_EQ(a.counters()[i], std::min(a_before[i], b_before[i]));
  }
}

TEST(CsrNodeTest, ExchangeMergeEqualizes) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 4);
  b.Init(SmallParams(), 2, 4);
  CountSketchResetNode::ExchangeMerge(a, b);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(CsrNodeTest, EstimateOfSingleHostIsSmall) {
  CountSketchResetNode node;
  CsrParams p;  // default 64-bin geometry
  node.Init(p, 1, 1);
  // One owned object: run lengths are 0 or 1, estimate near m/phi.
  EXPECT_LT(node.EstimateCount(), 2.5 * 64 / kFmPhi);
}

TEST(CsrNodeTest, BitSetFollowsCutoff) {
  CsrParams p = SmallParams();
  p.cutoff_base = 2.0;
  p.cutoff_slope = 0.0;  // f(k) = 2 for all k
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(p, 1, 1);
  b.Init(p, 2, 1);
  b.MergeFrom(a);
  const int32_t slot = a.owned_slots()[0];
  if (slot == b.owned_slots()[0]) GTEST_SKIP() << "slot collision";
  const int bin = slot / p.levels;
  const int level = slot % p.levels;
  EXPECT_TRUE(b.BitSet(bin, level));  // counter 0 <= 2
  b.AgeCounters();
  b.AgeCounters();
  EXPECT_TRUE(b.BitSet(bin, level));  // counter 2 <= 2
  b.AgeCounters();
  EXPECT_FALSE(b.BitSet(bin, level));  // counter 3 > 2: decayed out
}

TEST(CsrNodeTest, DisabledCutoffNeverDecays) {
  CsrParams p = SmallParams();
  p.cutoff_enabled = false;
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(p, 1, 1);
  b.Init(p, 2, 1);
  b.MergeFrom(a);
  const int32_t slot = a.owned_slots()[0];
  const int bin = slot / p.levels;
  const int level = slot % p.levels;
  for (int i = 0; i < 500; ++i) b.AgeCounters();
  EXPECT_TRUE(b.BitSet(bin, level));
}

TEST(CsrNodeTest, DeriveBitsMatchesBitSet) {
  CountSketchResetNode node;
  node.Init(SmallParams(), 9, 20);
  const FmSketch bits = node.DeriveBits();
  for (int b = 0; b < node.bins(); ++b) {
    for (int k = 0; k < node.levels(); ++k) {
      EXPECT_EQ(bits.TestSlot(b, k), node.BitSet(b, k));
    }
  }
}

TEST(CsrNodeTest, SerializedMergeMatchesDirectMerge) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  CountSketchResetNode b_copy;
  a.Init(SmallParams(), 1, 8);
  b.Init(SmallParams(), 2, 8);
  b_copy.Init(SmallParams(), 2, 8);
  BufWriter w;
  a.Serialize(&w);
  BufReader r(w.buffer());
  ASSERT_TRUE(b.MergeSerialized(&r).ok());
  b_copy.MergeFrom(a);
  EXPECT_EQ(b.counters(), b_copy.counters());
}

TEST(CsrNodeTest, MergeSerializedRejectsGeometryMismatch) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 1);
  CsrParams other = SmallParams();
  other.bins = 32;
  b.Init(other, 2, 1);
  BufWriter w;
  a.Serialize(&w);
  BufReader r(w.buffer());
  EXPECT_EQ(b.MergeSerialized(&r).code(), StatusCode::kInvalidArgument);
}

TEST(CsrNodeTest, MergeSerializedRejectsTruncation) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(SmallParams(), 1, 1);
  b.Init(SmallParams(), 2, 1);
  BufWriter w;
  a.Serialize(&w);
  std::vector<uint8_t> bytes = w.buffer();
  bytes.resize(bytes.size() / 2);
  BufReader r(bytes.data(), bytes.size());
  EXPECT_FALSE(b.MergeSerialized(&r).ok());
}

TEST(CsrSwarmTest, ConvergedEstimateNearHostCount) {
  const int n = 2000;
  const std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), n, 0.3 * n);
  EXPECT_NEAR(swarm.EstimateCount(n / 2), n, 0.3 * n);
}

TEST(CsrSwarmTest, MatchesStaticSketchWhenCutoffDisabled) {
  // With the cutoff disabled, the converged CSR bits must equal the
  // converged static Count-Sketch bits: both protocols register identical
  // object populations (cross-validation of the two implementations).
  const int n = 300;
  const std::vector<int64_t> ones(n, 1);
  CsrParams csr_params;
  csr_params.cutoff_enabled = false;
  csr_params.bins = 32;
  csr_params.levels = 20;
  CsrSwarm csr(ones, csr_params);
  CountSketchParams cs_params;
  cs_params.bins = 32;
  cs_params.levels = 20;
  CountSketchSwarm cs(ones, cs_params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng1(2);
  Rng rng2(2);
  for (int round = 0; round < 40; ++round) {
    csr.RunRound(env, pop, rng1);
    cs.RunRound(env, pop, rng2);
  }
  EXPECT_TRUE(csr.node(0).DeriveBits() == cs.node(0).sketch());
  EXPECT_DOUBLE_EQ(csr.EstimateCount(0), cs.EstimateCount(0));
}

TEST(CsrSwarmTest, RecoversAfterMassFailure) {
  // Fig 9: after half the hosts fail, the cutoff ages their bits out and
  // the estimate reverts to the surviving count within ~f(0)+ rounds.
  const int n = 2000;
  const std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(3);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), n / 2, 0.35 * n / 2);
}

TEST(CsrSwarmTest, WithoutCutoffNeverRecovers) {
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  params.cutoff_enabled = false;
  CsrSwarm swarm(ones, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  const double before = swarm.EstimateCount(0);
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.EstimateCount(0), before);
}

TEST(CsrSwarmTest, MultiplicityScalesEstimate) {
  const int n = 100;
  const int64_t mult = 50;
  const std::vector<int64_t> mults(n, mult);
  CsrSwarm swarm(mults, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(5);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0) / mult, n, 0.35 * n);
}

TEST(CsrSwarmTest, PushModeConverges) {
  const int n = 1000;
  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  params.mode = GossipMode::kPush;
  CsrSwarm swarm(ones, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateCount(0), n, 0.35 * n);
}

TEST(CsrSwarmTest, CounterDistributionBoundedByLinearCutoff) {
  // Fig 6's claim: at convergence, counters for level k are bounded by a
  // function linear in k and independent of n — check 7 + k/4 + slack.
  const int n = 5000;
  const std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  // Levels that at least two hosts own (k <~ log2(n/m)) must have small
  // counters everywhere.
  const CountSketchResetNode& node = swarm.node(0);
  for (int b = 0; b < node.bins(); ++b) {
    for (int k = 0; k < 4; ++k) {
      const uint8_t c = node.counter(b, k);
      if (c == kCsrInfinity) continue;  // never sourced
      EXPECT_LE(c, 7.0 + k / 4.0 + 6.0) << "bin " << b << " level " << k;
    }
  }
}

}  // namespace
}  // namespace dynagg
