// NodeAggregator under device churn: late joiners, departures and partition
// healing through the facade's serialized request/reply exchange.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregator.h"
#include "common/rng.h"

namespace dynagg {
namespace {

AggregatorConfig SmallConfig() {
  AggregatorConfig config;
  config.lambda = 0.05;
  // 64 bins keep the sketch quantization (~9.7% expected error) below the
  // 2x population changes these tests assert on.
  config.csr.bins = 64;
  config.csr.levels = 20;
  config.count_multiplicity = 100;
  return config;
}

TEST(AggregatorChurnTest, LateJoinerIsCounted) {
  AggregatorConfig config = SmallConfig();
  std::vector<std::unique_ptr<NodeAggregator>> owners;
  std::vector<NodeAggregator*> mesh;
  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    owners.push_back(std::make_unique<NodeAggregator>(100 + i, 10.0, config));
    mesh.push_back(owners.back().get());
  }
  auto round = [&](std::vector<NodeAggregator*>& devices) {
    for (size_t i = 0; i < devices.size(); ++i) {
      const auto request = devices[i]->BeginRound();
      size_t j = rng.UniformInt(devices.size() - 1);
      if (j >= i) ++j;
      const auto reply = devices[j]->HandleMessage(request);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(devices[i]->HandleReply(*reply).ok());
    }
    for (auto* device : devices) device->EndRound();
  };
  for (int r = 0; r < 40; ++r) round(mesh);
  const double before = mesh[0]->CountEstimate();
  EXPECT_NEAR(before, 6.0, 3.0);
  // Four more devices arrive.
  for (int i = 6; i < 10; ++i) {
    owners.push_back(std::make_unique<NodeAggregator>(100 + i, 50.0, config));
    mesh.push_back(owners.back().get());
  }
  for (int r = 0; r < 40; ++r) round(mesh);
  EXPECT_GT(mesh[0]->CountEstimate(), before);
  // The average moves towards the newcomers' value.
  EXPECT_GT(mesh[0]->AverageEstimate(), 15.0);
}

TEST(AggregatorChurnTest, DepartureShrinksCountAndAverageRecovers) {
  AggregatorConfig config = SmallConfig();
  std::vector<std::unique_ptr<NodeAggregator>> owners;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    owners.push_back(std::make_unique<NodeAggregator>(
        200 + i, i < 5 ? 10.0 : 90.0, config));
  }
  std::vector<NodeAggregator*> mesh;
  for (auto& o : owners) mesh.push_back(o.get());
  auto round = [&](std::vector<NodeAggregator*>& devices) {
    for (size_t i = 0; i < devices.size(); ++i) {
      const auto request = devices[i]->BeginRound();
      size_t j = rng.UniformInt(devices.size() - 1);
      if (j >= i) ++j;
      const auto reply = devices[j]->HandleMessage(request);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(devices[i]->HandleReply(*reply).ok());
    }
    for (auto* device : devices) device->EndRound();
  };
  for (int r = 0; r < 50; ++r) round(mesh);
  EXPECT_NEAR(mesh[0]->AverageEstimate(), 50.0, 10.0);
  const double count_before = mesh[0]->CountEstimate();
  // The high-valued half walks away (silently: just drop them from the
  // mesh).
  mesh.resize(5);
  for (int r = 0; r < 120; ++r) round(mesh);
  EXPECT_NEAR(mesh[0]->AverageEstimate(), 10.0, 5.0);
  EXPECT_LT(mesh[0]->CountEstimate(), count_before);
  EXPECT_NEAR(mesh[0]->CountEstimate(), 5.0, 3.0);
}

TEST(AggregatorChurnTest, PartitionsHealAfterReconnection) {
  AggregatorConfig config = SmallConfig();
  std::vector<std::unique_ptr<NodeAggregator>> owners;
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    owners.push_back(std::make_unique<NodeAggregator>(
        300 + i, i < 4 ? 20.0 : 80.0, config));
  }
  std::vector<NodeAggregator*> left;
  std::vector<NodeAggregator*> right;
  std::vector<NodeAggregator*> all;
  for (int i = 0; i < 8; ++i) {
    (i < 4 ? left : right).push_back(owners[i].get());
    all.push_back(owners[i].get());
  }
  auto round = [&](std::vector<NodeAggregator*>& devices) {
    for (size_t i = 0; i < devices.size(); ++i) {
      const auto request = devices[i]->BeginRound();
      size_t j = rng.UniformInt(devices.size() - 1);
      if (j >= i) ++j;
      const auto reply = devices[j]->HandleMessage(request);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(devices[i]->HandleReply(*reply).ok());
    }
    for (auto* device : devices) device->EndRound();
  };
  // Partitioned: the groups converge to their own averages.
  for (int r = 0; r < 60; ++r) {
    round(left);
    round(right);
  }
  EXPECT_NEAR(left[0]->AverageEstimate(), 20.0, 4.0);
  EXPECT_NEAR(right[0]->AverageEstimate(), 80.0, 4.0);
  // Reconnected: everyone converges to the global average.
  for (int r = 0; r < 60; ++r) round(all);
  EXPECT_NEAR(all[0]->AverageEstimate(), 50.0, 8.0);
  EXPECT_NEAR(all[7]->AverageEstimate(), 50.0, 8.0);
}

}  // namespace
}  // namespace dynagg
