#include "agg/aggregator.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dynagg {
namespace {

AggregatorConfig SmallConfig() {
  AggregatorConfig config;
  config.lambda = 0.05;
  config.csr.bins = 32;
  config.csr.levels = 16;
  config.count_multiplicity = 50;
  return config;
}

// Runs one full gossip round between two aggregators (a initiates).
void GossipOnce(NodeAggregator& a, NodeAggregator& b) {
  const auto request = a.BeginRound();
  b.BeginRound();  // b also starts its round (ages its sketch)
  const auto reply = b.HandleMessage(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(a.HandleReply(*reply).ok());
  a.EndRound();
  b.EndRound();
}

TEST(NodeAggregatorTest, InitialEstimatesAreLocal) {
  NodeAggregator agg(/*device_id=*/1, /*local_value=*/42.0, SmallConfig());
  EXPECT_DOUBLE_EQ(agg.AverageEstimate(), 42.0);
  EXPECT_GT(agg.CountEstimate(), 0.0);
}

TEST(NodeAggregatorTest, PairConvergesToPairAverage) {
  NodeAggregator a(1, 10.0, SmallConfig());
  NodeAggregator b(2, 30.0, SmallConfig());
  for (int round = 0; round < 30; ++round) GossipOnce(a, b);
  EXPECT_NEAR(a.AverageEstimate(), 20.0, 1.5);
  EXPECT_NEAR(b.AverageEstimate(), 20.0, 1.5);
}

TEST(NodeAggregatorTest, ExchangeConservesMass) {
  NodeAggregator a(1, 0.0, SmallConfig());
  NodeAggregator b(2, 100.0, SmallConfig());
  const auto request = a.BeginRound();
  b.BeginRound();
  const auto reply = b.HandleMessage(request);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(a.HandleReply(*reply).ok());
  // Before EndRound (reversion), total mass must equal the initial total.
  const Mass ma = a.psr_node().mass();
  const Mass mb = b.psr_node().mass();
  EXPECT_NEAR(ma.weight + mb.weight, 2.0, 1e-12);
  EXPECT_NEAR(ma.value + mb.value, 100.0, 1e-12);
  // And the exchange equalized them.
  EXPECT_NEAR(ma.weight, mb.weight, 1e-12);
  EXPECT_NEAR(ma.value, mb.value, 1e-12);
}

TEST(NodeAggregatorTest, GroupOfTenEstimatesSizeAndSum) {
  const int n = 10;
  AggregatorConfig config = SmallConfig();
  std::vector<std::unique_ptr<NodeAggregator>> devices;
  double true_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double value = 10.0 * i;
    true_sum += value;
    devices.push_back(
        std::make_unique<NodeAggregator>(1000 + i, value, config));
  }
  Rng rng(1);
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < n; ++i) {
      const int peer = static_cast<int>(rng.UniformInt(n - 1));
      const int j = peer >= i ? peer + 1 : peer;
      const auto request = devices[i]->BeginRound();
      const auto reply = devices[j]->HandleMessage(request);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(devices[i]->HandleReply(*reply).ok());
      devices[i]->EndRound();
    }
  }
  // Count: within FM error for 32 bins (~14% expected; allow wide margin).
  EXPECT_NEAR(devices[0]->CountEstimate(), n, 0.5 * n);
  // Average: reversion floor applies.
  EXPECT_NEAR(devices[0]->AverageEstimate(), 45.0, 8.0);
  // Sum: product of the two.
  EXPECT_NEAR(devices[0]->SumEstimate(), true_sum, 0.55 * true_sum);
}

TEST(NodeAggregatorTest, IsolatedDeviceDecaysToSelf) {
  AggregatorConfig config = SmallConfig();
  config.lambda = 0.2;
  NodeAggregator a(1, 10.0, config);
  NodeAggregator b(2, 90.0, config);
  for (int round = 0; round < 20; ++round) GossipOnce(a, b);
  EXPECT_NEAR(a.AverageEstimate(), 50.0, 10.0);
  // Device b walks away; a gossips with nobody.
  for (int round = 0; round < 80; ++round) {
    a.BeginRound();
    a.EndRound();
  }
  EXPECT_NEAR(a.AverageEstimate(), 10.0, 1.0);
  // The size sketch decays back towards 1 as b's slots age out.
  EXPECT_LT(a.CountEstimate(), 4.0);
}

TEST(NodeAggregatorTest, SetLocalValueShiftsEstimate) {
  AggregatorConfig config = SmallConfig();
  config.lambda = 0.5;
  NodeAggregator a(1, 10.0, config);
  a.SetLocalValue(70.0);
  for (int round = 0; round < 30; ++round) {
    a.BeginRound();
    a.EndRound();
  }
  EXPECT_NEAR(a.AverageEstimate(), 70.0, 1.0);
}

TEST(NodeAggregatorTest, RejectsGarbagePayload) {
  NodeAggregator a(1, 1.0, SmallConfig());
  const std::vector<uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_FALSE(a.HandleMessage(garbage).ok());
  EXPECT_FALSE(a.HandleReply(garbage).ok());
}

TEST(NodeAggregatorTest, RejectsWrongMessageType) {
  NodeAggregator a(1, 1.0, SmallConfig());
  NodeAggregator b(2, 2.0, SmallConfig());
  const auto request = a.BeginRound();
  // Feeding a *request* into HandleReply must fail.
  EXPECT_FALSE(b.HandleReply(request).ok());
}

TEST(NodeAggregatorTest, RejectsGeometryMismatch) {
  AggregatorConfig small = SmallConfig();
  AggregatorConfig big = SmallConfig();
  big.csr.bins = 64;
  NodeAggregator a(1, 1.0, small);
  NodeAggregator b(2, 2.0, big);
  const auto request = a.BeginRound();
  EXPECT_FALSE(b.HandleMessage(request).ok());
}

TEST(NodeAggregatorTest, PayloadSizeIsGeometryBound) {
  NodeAggregator a(1, 1.0, SmallConfig());
  const auto payload = a.BeginRound();
  // header(3) + mass(16) + geometry varints + 32*16 counters + length.
  EXPECT_GT(payload.size(), 32u * 16u);
  EXPECT_LT(payload.size(), 32u * 16u + 64u);
}

TEST(NodeAggregatorTest, HandleMessageMergesPeerSketch) {
  NodeAggregator a(1, 1.0, SmallConfig());
  NodeAggregator b(2, 2.0, SmallConfig());
  const double before = b.CountEstimate();
  const auto request = a.BeginRound();
  b.BeginRound();
  ASSERT_TRUE(b.HandleMessage(request).ok());
  EXPECT_GE(b.CountEstimate(), before);
}

}  // namespace
}  // namespace dynagg
