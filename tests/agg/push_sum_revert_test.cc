#include "agg/push_sum_revert.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

double SwarmRms(const PushSumRevertSwarm& swarm, const Population& pop,
                double truth) {
  return RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
}

TEST(PushSumRevertNodeTest, EmissionAppliesReversion) {
  PushSumRevertNode node;
  node.Init(10.0);
  // With lambda = 1 the outgoing mass is exactly the initial mass.
  const Mass half = node.EmitPushHalf(1.0, RevertMode::kFixed);
  EXPECT_DOUBLE_EQ(half.weight, 0.5);
  EXPECT_DOUBLE_EQ(half.value, 5.0);
}

TEST(PushSumRevertNodeTest, LambdaZeroMatchesPlainPushSum) {
  PushSumRevertNode node;
  node.Init(30.0);
  const Mass half = node.EmitPushHalf(0.0, RevertMode::kFixed);
  EXPECT_DOUBLE_EQ(half.weight, 0.5);
  EXPECT_DOUBLE_EQ(half.value, 15.0);
}

TEST(PushSumRevertNodeTest, RevertStepConservesMassAtEquilibrium) {
  // Section III: sum_i revert(v_i) = sum_i v_i when mass equals initial
  // mass. Two nodes with exchanged-but-conserved mass must keep total mass
  // constant through the revert.
  PushSumRevertNode a;
  PushSumRevertNode b;
  a.Init(10.0);
  b.Init(50.0);
  PushSumRevertNode::Exchange(a, b);
  const double before_w = a.mass().weight + b.mass().weight;
  const double before_v = a.mass().value + b.mass().value;
  a.EndRoundPushPull(0.3, RevertMode::kFixed);
  b.EndRoundPushPull(0.3, RevertMode::kFixed);
  EXPECT_NEAR(a.mass().weight + b.mass().weight, before_w, 1e-12);
  EXPECT_NEAR(a.mass().value + b.mass().value, before_v, 1e-12);
}

TEST(PushSumRevertNodeTest, SetLocalValueChangesReversionTarget) {
  PushSumRevertNode node;
  node.Init(10.0);
  node.SetLocalValue(90.0);
  // With lambda = 1, push/pull reversion snaps straight to the new value.
  node.EndRoundPushPull(1.0, RevertMode::kFixed);
  EXPECT_DOUBLE_EQ(node.Estimate(), 90.0);
}

TEST(PushSumRevertSwarmTest, ConvergesLikePushSumWhenStable) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  for (const GossipMode mode : {GossipMode::kPush, GossipMode::kPushPull}) {
    PushSumRevertSwarm swarm(values, {.lambda = 0.01, .mode = mode});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(2);
    const double truth = TrueAverage(values, pop);
    for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
    // Reversion adds a bias floor but the estimate must be close.
    EXPECT_LT(SwarmRms(swarm, pop, truth), 2.0);
  }
}

TEST(PushSumRevertSwarmTest, MassConservedWithStableMembership) {
  const int n = 300;
  const std::vector<double> values = UniformValues(n, 3);
  double value_sum = 0.0;
  for (const double v : values) value_sum += v;
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    swarm.RunRound(env, pop, rng);
    const Mass total = swarm.TotalAliveMass(pop);
    ASSERT_NEAR(total.weight, n, 1e-9 * n);
    ASSERT_NEAR(total.value, value_sum, 1e-9 * value_sum);
  }
}

TEST(PushSumRevertSwarmTest, RecoversFromCorrelatedFailure) {
  // The paper's headline behaviour (Fig 10a): after the top-valued half
  // fails, reverting protocols re-converge to the new average while the
  // static protocol (lambda = 0) stays biased.
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 5);
  UniformEnvironment env(n);

  auto run = [&](double lambda) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    Population pop(n);
    Rng rng(6);
    for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
    // Kill top half.
    std::vector<HostId> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&](HostId a, HostId b) {
      return values[a] > values[b];
    });
    for (int i = 0; i < n / 2; ++i) pop.Kill(ids[i]);
    for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
    return SwarmRms(swarm, pop, TrueAverage(values, pop));
  };

  const double static_rms = run(0.0);
  const double revert_rms = run(0.1);
  EXPECT_GT(static_rms, 15.0);  // stuck near the stale average
  EXPECT_LT(revert_rms, 6.0);   // reverted to the new average
}

TEST(PushSumRevertSwarmTest, HigherLambdaConvergesFasterWithHigherFloor) {
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 7);
  UniformEnvironment env(n);

  struct Outcome {
    int recovery_round = -1;
    double floor = 0.0;
  };
  auto run = [&](double lambda) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    Population pop(n);
    Rng rng(8);
    for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
    std::vector<HostId> ids(n);
    for (int i = 0; i < n; ++i) ids[i] = i;
    std::sort(ids.begin(), ids.end(), [&](HostId a, HostId b) {
      return values[a] > values[b];
    });
    for (int i = 0; i < n / 2; ++i) pop.Kill(ids[i]);
    Outcome out;
    std::vector<double> series;
    for (int round = 0; round < 80; ++round) {
      swarm.RunRound(env, pop, rng);
      series.push_back(SwarmRms(swarm, pop, TrueAverage(values, pop)));
    }
    out.floor = series.back();
    out.recovery_round = FirstSustainedBelow(series, 2.0 * out.floor + 0.5);
    return out;
  };

  const Outcome fast = run(0.5);
  const Outcome slow = run(0.05);
  // Higher lambda: faster recovery...
  EXPECT_GE(slow.recovery_round, fast.recovery_round);
  // ...but a larger converged error.
  EXPECT_GT(fast.floor, slow.floor);
}

TEST(PushSumRevertSwarmTest, UncorrelatedFailureHasNoLastingEffect) {
  const int n = 2000;
  const std::vector<double> values = UniformValues(n, 9);
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.01, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(10);
  for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
  Rng kill_rng(11);
  for (int i = 0; i < n / 2; ++i) {
    const HostId victim = pop.SampleAlive(kill_rng);
    if (victim != kInvalidHost) pop.Kill(victim);
  }
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_LT(SwarmRms(swarm, pop, TrueAverage(values, pop)), 3.0);
}

TEST(PushSumRevertSwarmTest, AdaptiveRevertConvergesToComparableFloor) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 12);
  PushSumRevertSwarm swarm(values, {.lambda = 0.05,
                                    .mode = GossipMode::kPush,
                                    .revert = RevertMode::kAdaptive});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(13);
  for (int round = 0; round < 50; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_LT(SwarmRms(swarm, pop, TrueAverage(values, pop)), 8.0);
}

TEST(PushSumRevertSwarmTest, IsolatedHostRevertsToOwnValue) {
  // A host with no peers must drift back to its own (correct-for-it) value
  // — the key advantage in sparse mobile networks (Fig 11 dataset 1).
  const std::vector<double> values = {10.0, 90.0};
  PushSumRevertSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(2);
  Population pop(2);
  Rng rng(14);
  // Mix them together first.
  for (int round = 0; round < 10; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.Estimate(0), 50.0, 10.0);
  // Now isolate host 0.
  pop.Kill(1);
  for (int round = 0; round < 100; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.Estimate(0), 10.0, 1.0);
}

}  // namespace
}  // namespace dynagg
