#include "agg/moments.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(DynamicMomentsTest, ConvergesToPopulationMoments) {
  const int n = 1000;
  Rng vrng(1);
  std::vector<double> values(n);
  RunningStat truth;
  for (auto& v : values) {
    v = vrng.UniformDouble(0, 100);
    truth.Add(v);
  }
  DynamicMomentsSwarm swarm(
      values, {.lambda = 0.001, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateMean(0), truth.mean(), 1.0);
  EXPECT_NEAR(swarm.EstimateVariance(0), truth.variance(),
              0.05 * truth.variance());
  EXPECT_NEAR(swarm.EstimateStdDev(0), truth.stddev(),
              0.05 * truth.stddev());
}

TEST(DynamicMomentsTest, UniformValuesHaveZeroVariance) {
  const int n = 200;
  const std::vector<double> values(n, 42.0);
  DynamicMomentsSwarm swarm(
      values, {.lambda = 0.01, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateVariance(0), 0.0, 1e-6);
  EXPECT_NEAR(swarm.EstimateMean(0), 42.0, 1e-6);
}

TEST(DynamicMomentsTest, VarianceNeverNegative) {
  const int n = 50;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = i % 2 == 0 ? 10.0 : 10.0001;
  DynamicMomentsSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 30; ++round) {
    swarm.RunRound(env, pop, rng);
    for (HostId id = 0; id < n; ++id) {
      ASSERT_GE(swarm.EstimateVariance(id), 0.0);
    }
  }
}

TEST(DynamicMomentsTest, TracksVarianceAfterCorrelatedFailure) {
  // Two-cluster distribution: values 0 and 100. Killing the 100-cluster
  // collapses the variance to ~0; the dynamic estimate must follow.
  const int n = 1000;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = i < n / 2 ? 0.0 : 100.0;
  DynamicMomentsSwarm swarm(
      values, {.lambda = 0.1, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(5);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  // Population variance of a 0/100 half-half split is 2500.
  EXPECT_NEAR(swarm.EstimateVariance(0), 2500.0, 300.0);
  for (HostId id = n / 2; id < n; ++id) pop.Kill(id);
  for (int round = 0; round < 80; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_LT(swarm.EstimateVariance(0), 300.0);
  EXPECT_NEAR(swarm.EstimateMean(0), 0.0, 3.0);
}

TEST(DynamicMomentsTest, SetLocalValueUpdatesBothMoments) {
  const int n = 100;
  const std::vector<double> values(n, 10.0);
  DynamicMomentsSwarm swarm(
      values, {.lambda = 0.2, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (HostId id = 0; id < n; ++id) swarm.SetLocalValue(id, 20.0);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateMean(0), 20.0, 0.5);
  EXPECT_NEAR(swarm.EstimateVariance(0), 0.0, 15.0);
}

TEST(DynamicMomentsTest, SizeAndAccessors) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  DynamicMomentsSwarm swarm(values, PsrParams{});
  EXPECT_EQ(swarm.size(), 3);
  EXPECT_DOUBLE_EQ(swarm.mean_swarm().Estimate(2), 3.0);
  EXPECT_DOUBLE_EQ(swarm.square_swarm().Estimate(2), 9.0);
}

}  // namespace
}  // namespace dynagg
