#include "agg/extremes.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<uint64_t> SequentialKeys(int n) {
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 1000);
  return keys;
}

TEST(DynamicExtremeNodeTest, StartsWithOwnValue) {
  DynamicExtremeNode node;
  node.Init(5.0, 7);
  EXPECT_DOUBLE_EQ(node.Estimate(), 5.0);
  EXPECT_EQ(node.BestKey(), 7u);
}

TEST(DynamicExtremeNodeTest, OfferAdoptsBetterMax) {
  ExtremeParams params;
  DynamicExtremeNode node;
  node.Init(5.0, 1);
  node.Offer(ExtremeCandidate{9.0, 2, 0}, params);
  EXPECT_DOUBLE_EQ(node.Estimate(), 9.0);
  EXPECT_EQ(node.BestKey(), 2u);
  node.Offer(ExtremeCandidate{7.0, 3, 0}, params);
  EXPECT_DOUBLE_EQ(node.Estimate(), 9.0);  // worse candidate ignored
}

TEST(DynamicExtremeNodeTest, OfferAdoptsBetterMin) {
  ExtremeParams params;
  params.kind = ExtremeKind::kMinimum;
  DynamicExtremeNode node;
  node.Init(5.0, 1);
  node.Offer(ExtremeCandidate{2.0, 2, 0}, params);
  EXPECT_DOUBLE_EQ(node.Estimate(), 2.0);
  node.Offer(ExtremeCandidate{8.0, 3, 0}, params);
  EXPECT_DOUBLE_EQ(node.Estimate(), 2.0);
}

TEST(DynamicExtremeNodeTest, ExpiredCandidatesAreRejected) {
  ExtremeParams params;
  params.cutoff = 3;
  DynamicExtremeNode node;
  node.Init(5.0, 1);
  node.Offer(ExtremeCandidate{9.0, 2, 4}, params);  // too old
  EXPECT_DOUBLE_EQ(node.Estimate(), 5.0);
}

TEST(DynamicExtremeNodeTest, AdoptedCandidateAgesOut) {
  ExtremeParams params;
  params.cutoff = 3;
  DynamicExtremeNode node;
  node.Init(5.0, 1);
  node.Offer(ExtremeCandidate{9.0, 2, 0}, params);
  for (int round = 0; round < 3; ++round) {
    node.BeginRound(params);
    EXPECT_DOUBLE_EQ(node.Estimate(), 9.0) << round;
  }
  node.BeginRound(params);  // age 4 > cutoff: falls back to own value
  EXPECT_DOUBLE_EQ(node.Estimate(), 5.0);
}

TEST(DynamicExtremeNodeTest, ZeroCutoffDisablesExpiry) {
  ExtremeParams params;
  params.cutoff = 0;
  DynamicExtremeNode node;
  node.Init(5.0, 1);
  node.Offer(ExtremeCandidate{9.0, 2, 1000}, params);
  for (int round = 0; round < 50; ++round) node.BeginRound(params);
  EXPECT_DOUBLE_EQ(node.Estimate(), 9.0);
}

TEST(DynamicExtremeSwarmTest, ConvergesToGlobalMax) {
  const int n = 1000;
  Rng vrng(1);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  values[123] = 250.0;  // unique winner
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), ExtremeParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 15; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = 0; id < n; id += 37) {
    EXPECT_DOUBLE_EQ(swarm.Estimate(id), 250.0);
    EXPECT_EQ(swarm.BestKey(id), 1000u + 123u);
  }
}

TEST(DynamicExtremeSwarmTest, RecoversAfterWinnerDeparts) {
  const int n = 1000;
  Rng vrng(3);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  values[0] = 500.0;  // winner
  values[1] = 400.0;  // runner-up
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), ExtremeParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 15; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.Estimate(500), 500.0);
  pop.Kill(0);
  // Winner's candidate must expire within cutoff + propagation slack.
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  for (HostId id = 1; id < n; id += 41) {
    EXPECT_DOUBLE_EQ(swarm.Estimate(id), 400.0) << id;
    EXPECT_EQ(swarm.BestKey(id), 1001u);
  }
}

TEST(DynamicExtremeSwarmTest, StaticModeNeverForgets) {
  const int n = 300;
  std::vector<double> values(n, 1.0);
  values[0] = 99.0;
  ExtremeParams params;
  params.cutoff = 0;  // static gossip extreme
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(5);
  for (int round = 0; round < 15; ++round) swarm.RunRound(env, pop, rng);
  pop.Kill(0);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.Estimate(1), 99.0);  // stale forever
}

TEST(DynamicExtremeSwarmTest, SetLocalValueChangesWinner) {
  const int n = 200;
  std::vector<double> values(n, 10.0);
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), ExtremeParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (int round = 0; round < 10; ++round) swarm.RunRound(env, pop, rng);
  swarm.node(50).SetLocalValue(777.0);
  for (int round = 0; round < 15; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.Estimate(0), 777.0);
}

TEST(DynamicExtremeSwarmTest, PushModeConverges) {
  const int n = 500;
  Rng vrng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  values[7] = 300.0;
  ExtremeParams params;
  params.mode = GossipMode::kPush;
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(8);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  int holders = 0;
  for (HostId id = 0; id < n; ++id) {
    if (swarm.Estimate(id) == 300.0) ++holders;
  }
  EXPECT_GT(holders, n * 9 / 10);
}

TEST(DynamicExtremeSwarmTest, MinimumTracksDepartures) {
  const int n = 400;
  Rng vrng(9);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(50, 100);
  values[3] = 1.0;
  ExtremeParams params;
  params.kind = ExtremeKind::kMinimum;
  DynamicExtremeSwarm swarm(values, SequentialKeys(n), params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(10);
  for (int round = 0; round < 15; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_DOUBLE_EQ(swarm.Estimate(100), 1.0);
  pop.Kill(3);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_GT(swarm.Estimate(100), 40.0);  // recovered to a live minimum
}

}  // namespace
}  // namespace dynagg
