#include "agg/epoch_push_sum.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

std::vector<double> UniformValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

TEST(EpochNodeTest, TickRollsEpoch) {
  EpochPushSumNode node;
  node.Init(5.0, /*phase=*/0);
  EXPECT_EQ(node.epoch(), 0u);
  for (int i = 0; i < 10; ++i) node.Tick(10);
  EXPECT_EQ(node.epoch(), 1u);
}

TEST(EpochNodeTest, PhaseShiftsRollover) {
  EpochPushSumNode node;
  node.Init(5.0, /*phase=*/8);
  node.Tick(10);
  node.Tick(10);
  EXPECT_EQ(node.epoch(), 1u);  // 8 + 2 ticks = rollover
}

TEST(EpochNodeTest, AdvanceSnapshotsEstimate) {
  EpochPushSumNode node;
  node.Init(30.0, 0);
  node.state().Init(30.0);
  node.AdvanceToEpoch(1);
  EXPECT_EQ(node.epoch(), 1u);
  EXPECT_DOUBLE_EQ(node.Estimate(), 30.0);  // snapshot of completed epoch
}

TEST(EpochNodeTest, AdvanceToOlderEpochIgnored) {
  EpochPushSumNode node;
  node.Init(1.0, 0);
  node.AdvanceToEpoch(3);
  node.AdvanceToEpoch(2);
  EXPECT_EQ(node.epoch(), 3u);
}

TEST(EpochSwarmTest, SynchronizedClocksConverge) {
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 1);
  EpochPushSumSwarm swarm(values, {.epoch_length = 25});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  const double truth = TrueAverage(values, pop);
  // Run through one full epoch plus a little; the reported estimate is the
  // snapshot of the completed epoch, which had time to converge.
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_LT(rms, 1.0);
}

TEST(EpochSwarmTest, ShortEpochsNeverConverge) {
  // Section II.C: if the epoch length is below the convergence time the
  // protocol resets before converging and reported estimates stay noisy.
  const int n = 1000;
  const std::vector<double> values = UniformValues(n, 3);
  EpochPushSumSwarm swarm(values, {.epoch_length = 2});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 30; ++round) swarm.RunRound(env, pop, rng);
  const double rms = RmsDeviationOverAlive(
      pop, truth, [&](HostId id) { return swarm.Estimate(id); });
  EXPECT_GT(rms, 5.0);
}

TEST(EpochSwarmTest, EpochNumbersSynchronizeThroughGossip) {
  const int n = 200;
  const std::vector<double> values = UniformValues(n, 5);
  std::vector<int> phases(n);
  Rng prng(6);
  for (auto& p : phases) p = static_cast<int>(prng.UniformInt(10));
  EpochPushSumSwarm swarm(values, {.epoch_length = 10}, phases);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  // All hosts should have been dragged to the maximum epoch.
  const uint64_t epoch0 = swarm.epoch(0);
  int mismatches = 0;
  for (HostId id = 0; id < n; ++id) {
    if (swarm.epoch(id) != epoch0) ++mismatches;
  }
  EXPECT_LE(mismatches, n / 20);  // a few stragglers right after a rollover
}

TEST(EpochSwarmTest, PhaseSkewDegradesAccuracy) {
  // Hosts with desynchronized clocks keep dragging each other into new
  // epochs, destroying in-progress mass (the clique-migration problem).
  const int n = 500;
  const std::vector<double> values = UniformValues(n, 8);
  UniformEnvironment env(n);
  const double truth = 50.0;

  auto run = [&](bool skewed) {
    std::vector<int> phases(n, 0);
    if (skewed) {
      Rng prng(9);
      for (auto& p : phases) p = static_cast<int>(prng.UniformInt(25));
    }
    EpochPushSumSwarm swarm(values, {.epoch_length = 25}, phases);
    Population pop(n);
    Rng rng(10);
    RunningStat rms_tail;
    for (int round = 0; round < 100; ++round) {
      swarm.RunRound(env, pop, rng);
      if (round >= 50) {
        rms_tail.Add(RmsDeviationOverAlive(
            pop, truth, [&](HostId id) { return swarm.Estimate(id); }));
      }
    }
    return rms_tail.mean();
  };

  EXPECT_GT(run(/*skewed=*/true), run(/*skewed=*/false));
}

}  // namespace
}  // namespace dynagg
