#include "agg/quantiles.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(UniformThresholdsTest, EvenSpacing) {
  const auto t = UniformThresholds(0.0, 100.0, 5);
  EXPECT_EQ(t, (std::vector<double>{0.0, 25.0, 50.0, 75.0, 100.0}));
}

TEST(UniformThresholdsTest, TwoPoints) {
  const auto t = UniformThresholds(-1.0, 1.0, 2);
  EXPECT_EQ(t, (std::vector<double>{-1.0, 1.0}));
}

QuantileParams DefaultParams() {
  QuantileParams params;
  params.thresholds = UniformThresholds(0.0, 100.0, 11);
  params.psr.lambda = 0.01;
  return params;
}

TEST(DynamicCdfTest, InitialCdfIsLocalIndicator) {
  const std::vector<double> values = {30.0, 70.0};
  DynamicCdfSwarm swarm(values, DefaultParams());
  // Host 0 (value 30): indicator 0 for thresholds < 30, 1 for >= 30.
  EXPECT_DOUBLE_EQ(swarm.EstimateCdf(0, 2), 0.0);  // t = 20
  EXPECT_DOUBLE_EQ(swarm.EstimateCdf(0, 3), 1.0);  // t = 30
  EXPECT_DOUBLE_EQ(swarm.EstimateCdf(1, 6), 0.0);  // t = 60 < 70
  EXPECT_DOUBLE_EQ(swarm.EstimateCdf(1, 7), 1.0);  // t = 70
}

TEST(DynamicCdfTest, ConvergesToTrueCdf) {
  const int n = 1000;
  Rng vrng(1);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  DynamicCdfSwarm swarm(values, DefaultParams());
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  // U[0,100): P[v <= t] = t / 100.
  for (int t = 0; t < swarm.num_thresholds(); ++t) {
    EXPECT_NEAR(swarm.EstimateCdf(0, t), swarm.threshold(t) / 100.0, 0.05)
        << "threshold " << swarm.threshold(t);
  }
}

TEST(DynamicCdfTest, QuantilesOfUniformDistribution) {
  const int n = 1000;
  Rng vrng(3);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  DynamicCdfSwarm swarm(values, DefaultParams());
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(4);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.5), 50.0, 6.0);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.9), 90.0, 6.0);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.1), 10.0, 6.0);
}

TEST(DynamicCdfTest, QuantileIsMonotoneInQ) {
  const int n = 300;
  Rng vrng(5);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  DynamicCdfSwarm swarm(values, DefaultParams());
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(6);
  for (int round = 0; round < 20; ++round) swarm.RunRound(env, pop, rng);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const double quantile = swarm.EstimateQuantile(0, q);
    EXPECT_GE(quantile, prev);
    prev = quantile;
  }
}

TEST(DynamicCdfTest, TracksDistributionAfterCorrelatedFailure) {
  // Kill every host above 50: the median must fall towards ~25.
  const int n = 1000;
  Rng vrng(7);
  std::vector<double> values(n);
  for (auto& v : values) v = vrng.UniformDouble(0, 100);
  QuantileParams params = DefaultParams();
  params.psr.lambda = 0.1;
  DynamicCdfSwarm swarm(values, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(8);
  for (int round = 0; round < 25; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.5), 50.0, 8.0);
  for (HostId id = 0; id < n; ++id) {
    if (values[id] > 50.0) pop.Kill(id);
  }
  for (int round = 0; round < 60; ++round) swarm.RunRound(env, pop, rng);
  EXPECT_NEAR(swarm.EstimateQuantile(0, 0.5), 25.0, 8.0);
}

TEST(DynamicCdfTest, SetLocalValueReanchorsIndicators) {
  const int n = 100;
  const std::vector<double> values(n, 10.0);
  QuantileParams params = DefaultParams();
  params.psr.lambda = 0.2;
  DynamicCdfSwarm swarm(values, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(9);
  for (HostId id = 0; id < n; ++id) swarm.SetLocalValue(id, 80.0);
  for (int round = 0; round < 40; ++round) swarm.RunRound(env, pop, rng);
  // All values now 80: CDF at 70 ~ 0, at 80 ~ 1.
  EXPECT_LT(swarm.EstimateCdf(0, 7), 0.1);
  EXPECT_GT(swarm.EstimateCdf(0, 8), 0.9);
}

TEST(DynamicCdfTest, EstimatesClampedToUnitInterval) {
  const std::vector<double> values = {0.0, 100.0};
  DynamicCdfSwarm swarm(values, DefaultParams());
  for (int t = 0; t < swarm.num_thresholds(); ++t) {
    for (HostId id = 0; id < 2; ++id) {
      const double cdf = swarm.EstimateCdf(id, t);
      EXPECT_GE(cdf, 0.0);
      EXPECT_LE(cdf, 1.0);
    }
  }
}

}  // namespace
}  // namespace dynagg
