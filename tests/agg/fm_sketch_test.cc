#include "agg/fm_sketch.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/wire.h"

namespace dynagg {
namespace {

TEST(FmSketchTest, EmptySketchHasZeroRuns) {
  FmSketch sketch(64, 32);
  for (int b = 0; b < 64; ++b) EXPECT_EQ(sketch.RunLength(b), 0);
  EXPECT_EQ(sketch.PopCount(), 0);
}

TEST(FmSketchTest, InsertSlotSetsBit) {
  FmSketch sketch(8, 16);
  EXPECT_FALSE(sketch.TestSlot(3, 5));
  sketch.InsertSlot(3, 5);
  EXPECT_TRUE(sketch.TestSlot(3, 5));
  EXPECT_EQ(sketch.PopCount(), 1);
}

TEST(FmSketchTest, InsertIsIdempotent) {
  FmSketch sketch(8, 16);
  sketch.InsertObject(42, 1);
  const FmSketch once = sketch;
  sketch.InsertObject(42, 1);
  EXPECT_TRUE(sketch == once);
}

TEST(FmSketchTest, RunLengthCountsContiguousOnes) {
  FmSketch sketch(4, 16);
  sketch.InsertSlot(0, 0);
  sketch.InsertSlot(0, 1);
  sketch.InsertSlot(0, 3);  // gap at 2
  EXPECT_EQ(sketch.RunLength(0), 2);
  sketch.InsertSlot(0, 2);
  EXPECT_EQ(sketch.RunLength(0), 4);
}

TEST(FmSketchTest, RunLengthFullBin) {
  FmSketch sketch(2, 8);
  for (int k = 0; k < 8; ++k) sketch.InsertSlot(0, k);
  EXPECT_EQ(sketch.RunLength(0), 8);
  EXPECT_EQ(sketch.RunLength(1), 0);
}

TEST(FmSketchTest, MergeOrIsUnionAndCommutative) {
  FmSketch a(8, 16);
  FmSketch b(8, 16);
  for (uint64_t id = 0; id < 100; ++id) {
    (id % 2 ? a : b).InsertObject(id, 7);
  }
  FmSketch ab = a;
  ab.MergeOr(b);
  FmSketch ba = b;
  ba.MergeOr(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_GE(ab.PopCount(), a.PopCount());
  EXPECT_GE(ab.PopCount(), b.PopCount());
}

TEST(FmSketchTest, MergeIsIdempotent) {
  FmSketch a(8, 16);
  for (uint64_t id = 0; id < 50; ++id) a.InsertObject(id, 3);
  FmSketch merged = a;
  merged.MergeOr(a);
  EXPECT_TRUE(merged == a);
}

TEST(FmSketchTest, DuplicateInsensitiveAcrossPartitions) {
  // Splitting a set across sketches and ORing equals sketching the union —
  // the property that makes the sketch gossip-able (Section II.B).
  FmSketch whole(16, 24);
  FmSketch part1(16, 24);
  FmSketch part2(16, 24);
  for (uint64_t id = 0; id < 1000; ++id) {
    whole.InsertObject(id, 9);
    part1.InsertObject(id, 9);        // overlapping copies
    if (id % 3 == 0) part2.InsertObject(id, 9);
  }
  part1.MergeOr(part2);
  EXPECT_TRUE(part1 == whole);
}

TEST(FmSketchTest, EstimateGrowsWithCount) {
  FmSketch sketch(64, 32);
  double prev = sketch.EstimateCount();
  for (const int target : {100, 1000, 10000}) {
    FmSketch s(64, 32);
    for (int id = 0; id < target; ++id) s.InsertObject(id, 11);
    const double est = s.EstimateCount();
    EXPECT_GT(est, prev);
    prev = est;
  }
}

TEST(FmSketchTest, EstimateWithin64BucketErrorBound) {
  // 64 bins -> expected standard error ~9.7% (Flajolet & Martin); allow 3x.
  for (const int n : {1000, 10000, 100000}) {
    FmSketch sketch(64, 32);
    for (int id = 0; id < n; ++id) {
      sketch.InsertObject(static_cast<uint64_t>(id) * 2654435761u + n, 13);
    }
    const double est = sketch.EstimateCount();
    EXPECT_NEAR(est, n, 0.3 * n) << "n=" << n;
  }
}

TEST(FmSketchTest, EstimateAveragedOverSeedsIsUnbiased) {
  // Across independent hash seeds the mean estimate should be within a few
  // percent of the truth.
  const int n = 5000;
  double total = 0.0;
  const int trials = 30;
  for (int seed = 0; seed < trials; ++seed) {
    FmSketch sketch(64, 32);
    for (int id = 0; id < n; ++id) sketch.InsertObject(id, 1000 + seed);
    total += sketch.EstimateCount();
  }
  EXPECT_NEAR(total / trials, n, 0.08 * n);
}

TEST(FmSketchTest, SerializeRoundTrip) {
  FmSketch sketch(16, 24);
  for (uint64_t id = 0; id < 500; ++id) sketch.InsertObject(id, 5);
  BufWriter w;
  sketch.Serialize(&w);
  BufReader r(w.buffer());
  const Result<FmSketch> parsed = FmSketch::Deserialize(&r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == sketch);
  EXPECT_TRUE(r.AtEnd());
}

TEST(FmSketchTest, DeserializeRejectsGarbage) {
  const uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xff};
  BufReader r(garbage, sizeof(garbage));
  EXPECT_FALSE(FmSketch::Deserialize(&r).ok());
}

TEST(FmSketchTest, DeserializeRejectsBitsAboveMask) {
  BufWriter w;
  w.PutVarint(1);   // bins
  w.PutVarint(4);   // levels
  w.PutVarint(32);  // bit 5 set but only 4 levels allowed
  BufReader r(w.buffer());
  const auto result = FmSketch::Deserialize(&r);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(FmSketchTest, ClearResets) {
  FmSketch sketch(4, 8);
  sketch.InsertSlot(1, 1);
  sketch.Clear();
  EXPECT_EQ(sketch.PopCount(), 0);
}

TEST(FmSketchTest, SixtyFourLevelGeometry) {
  FmSketch sketch(2, 64);
  sketch.InsertSlot(0, 63);
  EXPECT_TRUE(sketch.TestSlot(0, 63));
  for (int k = 0; k < 64; ++k) sketch.InsertSlot(1, k);
  EXPECT_EQ(sketch.RunLength(1), 64);
}

}  // namespace
}  // namespace dynagg
