// Async driver tests: byte-identical output across executor thread
// counts (message-level scheduling must not leak executor concurrency
// into results), the loss-sweep victim/control relationship between
// push-sum and push-flow, delivery-rate bookkeeping, and the dry-run
// rejections that fence the driver's spec surface.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {
namespace {

std::vector<ResultTable> MustRunAll(const std::string& text, int threads) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  Result<std::vector<ResultTable>> tables =
      RunExperiment((*specs)[0], threads);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  return std::move(tables).value();
}

/// Runs and renders every table of the experiment (determinism diffs).
std::string MustRender(const std::string& text, int threads) {
  const std::vector<ResultTable> tables = MustRunAll(text, threads);
  Result<std::string> out = RenderTables(tables, "t", "csv");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

/// Runs a scalar-records-only experiment (exactly one summary table).
CsvTable MustRun(const std::string& text, int threads) {
  std::vector<ResultTable> tables = MustRunAll(text, threads);
  EXPECT_EQ(tables.size(), 1u);
  return std::move(tables[0].table);
}

int ColumnIndex(const CsvTable& table, const std::string& name) {
  const auto& cols = table.columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status DryRun(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return ValidateExperiment((*specs)[0]);
}

void ExpectDryRunError(const std::string& text, const std::string& needle) {
  const Status st = DryRun(text);
  EXPECT_FALSE(st.ok()) << "spec unexpectedly valid:\n" << text;
  if (!st.ok()) {
    EXPECT_NE(st.message().find(needle), std::string::npos)
        << "diagnostic '" << st.message() << "' does not mention '"
        << needle << "'";
  }
}

constexpr char kLossyPushFlow[] =
    "name = t\n"
    "driver = async\n"
    "protocol = push-flow\n"
    "environment = random-graph\n"
    "env.degree = 4\n"
    "hosts = 48\n"
    "rounds = 40\n"
    "trials = 2\n"
    "seed = 7\n"
    "gossip_period = 30\n"
    "net.latency = exponential\n"
    "net.latency_s = 10\n"
    "net.loss = 0.2\n"
    "record = rms, final_rms, delivery_rate, bandwidth\n"
    "record.every = 10\n";

// ---------------------------------------------------------- determinism ---

TEST(AsyncDriverTest, OutputIsByteIdenticalAcrossExecutorThreads) {
  const std::string serial = MustRender(kLossyPushFlow, 1);
  const std::string parallel = MustRender(kLossyPushFlow, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(AsyncDriverTest, SweptRunsAreByteIdenticalAcrossExecutorThreads) {
  const std::string text =
      "name = t\n"
      "driver = async\n"
      "protocol = push-sum\n"
      "protocol.mode = push\n"
      "hosts = 32\n"
      "rounds = 20\n"
      "trials = 2\n"
      "seed = 9\n"
      "net.latency = fixed\n"
      "net.latency_s = 1\n"
      "sweep = net.loss: 0, 0.1, 0.3\n"
      "record = final_rms, delivery_rate\n";
  EXPECT_EQ(MustRender(text, 1), MustRender(text, 8));
}

// ----------------------------------------------------- loss semantics ---

double MeanFinalRms(const std::string& text) {
  const CsvTable table = MustRun(text, 2);
  const int col = ColumnIndex(table, "final_rms");
  EXPECT_GE(col, 0);
  double sum = 0.0;
  for (int64_t r = 0; r < table.num_rows(); ++r) sum += table.row(r)[col];
  return sum / static_cast<double>(table.num_rows());
}

std::string LossSpec(const char* protocol, const char* extra, double loss) {
  std::string text =
      "name = t\n"
      "driver = async\n"
      "environment = random-graph\n"
      "env.degree = 4\n"
      "hosts = 64\n"
      "rounds = 100\n"
      "trials = 2\n"
      "seed = 777\n"
      "net.latency = fixed\n"
      "net.latency_s = 1\n"
      "record = final_rms\n";
  text += std::string("protocol = ") + protocol + "\n" + extra;
  text += "net.loss = " + std::to_string(loss) + "\n";
  return text;
}

TEST(AsyncDriverTest, LossDivergesPushSumButNotPushFlow) {
  // The acceptance relationship of the loss sweep: push-sum's settled
  // error grows under loss (destroyed mass is permanent) while push-flow
  // self-heals and stays well below it at every nonzero rate.
  const double ps_clean = MeanFinalRms(LossSpec(
      "push-sum", "protocol.mode = push\n", 0.0));
  const double ps_lossy = MeanFinalRms(LossSpec(
      "push-sum", "protocol.mode = push\n", 0.2));
  const double pf_clean = MeanFinalRms(LossSpec("push-flow", "", 0.0));
  const double pf_lossy = MeanFinalRms(LossSpec("push-flow", "", 0.2));

  // Lossless runs converge tightly, and to the same error up to the
  // protocols' different summation orders: the driver feeds both the same
  // partner plans and per-message transfers.
  EXPECT_NEAR(ps_clean, pf_clean, 1e-9);
  EXPECT_LT(ps_clean, 1e-2);
  // The victim diverges by orders of magnitude; the control stays bounded.
  EXPECT_GT(ps_lossy, 100 * ps_clean);
  EXPECT_LT(pf_lossy, ps_lossy / 5);
}

TEST(AsyncDriverTest, DeliveryRateTracksLossAndDropsStillCostBandwidth) {
  const std::string text =
      "name = t\n"
      "driver = async\n"
      "protocol = push-flow\n"
      "hosts = 64\n"
      "rounds = 40\n"
      "trials = 2\n"
      "seed = 7\n"
      "net.latency = fixed\n"
      "net.latency_s = 1\n"
      "net.loss = 0.2\n"
      "record = delivery_rate, bandwidth\n";
  const CsvTable table = MustRun(text, 2);
  const int rate_col = ColumnIndex(table, "delivery_rate");
  const int msg_col = ColumnIndex(table, "msgs_per_host_round");
  ASSERT_GE(rate_col, 0);
  ASSERT_GE(msg_col, 0);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_NEAR(table.row(r)[rate_col], 0.8, 0.05);
    // Every planned message is metered as sent, dropped or not: one push
    // per host per tick regardless of the loss rate.
    EXPECT_DOUBLE_EQ(table.row(r)[msg_col], 1.0);
  }
}

// ------------------------------------------------------- validation ---

TEST(AsyncDriverTest, ValidSpecsDryRun) {
  EXPECT_TRUE(DryRun(kLossyPushFlow).ok());
  EXPECT_TRUE(DryRun("driver = async\nprotocol = push-sum\n"
                     "protocol.mode = push\nhosts = 16\n")
                  .ok());
}

TEST(AsyncDriverTest, RejectsNetKeysOnRoundDrivers) {
  ExpectDryRunError("protocol = push-sum\nhosts = 16\nnet.loss = 0.1\n",
                    "driver = async");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nseeds.message_stream = trial\n",
      "driver = async");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nsweep = net.loss: 0, 0.1\n",
      "driver = async");
}

TEST(AsyncDriverTest, RejectsAsyncIncapableProtocolsAndModes) {
  // push-sum's default pushpull exchange is instantaneous by construction.
  ExpectDryRunError("driver = async\nprotocol = push-sum\nhosts = 16\n",
                    "protocol.mode = push");
  // Protocols without message-level hooks name the discovery path.
  ExpectDryRunError("driver = async\nprotocol = full-transfer\nhosts = 16\n",
                    "message-level");
}

TEST(AsyncDriverTest, RejectsMalformedNetworkParams) {
  const std::string base =
      "driver = async\nprotocol = push-flow\nhosts = 16\n";
  ExpectDryRunError(base + "net.latency = gaussian\n", "net.latency");
  ExpectDryRunError(base + "net.loss = 1.5\n", "net.loss");
  ExpectDryRunError(base + "net.loss = nan\n", "net.loss");
  ExpectDryRunError(base + "net.jitter = -1\n", "net.jitter");
  ExpectDryRunError(base + "net.latency = uniform\nnet.latency_s = 5\n",
                    "net.latency_hi_s");
  ExpectDryRunError(
      base + "net.latency = fixed\nnet.latency_s = 1\nnet.latency_hi_s = 2\n",
      "net.latency_hi_s");
  ExpectDryRunError(base + "net.bogus = 1\n", "net.bogus");
}

TEST(AsyncDriverTest, RejectsRoundDriverOnlyKnobs) {
  const std::string base =
      "driver = async\nprotocol = push-flow\nhosts = 16\n";
  ExpectDryRunError(base + "failure.kind = churn\n", "failure.");
  ExpectDryRunError(base + "sample_period = 4\n", "sample_period");
  ExpectDryRunError(base + "intra_round_threads = 2\n",
                    "intra_round_threads");
  ExpectDryRunError(base + "record = avg_group_size\n", "avg_group_size");
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
