// NetworkModel property tests: per-message delivery decisions must be a
// pure function of (root seed, message index) — the same index yields the
// same verdict no matter how many other indices were decided before it, in
// any order — and every decision must consume a constant number of Rng
// draws whether or not the message is dropped, so the driver's reported
// draw count is itself order-independent. Distribution checks pin the
// semantics of each latency kind and of the Bernoulli drop.

#include "net/network_model.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"

namespace dynagg {
namespace net {
namespace {

NetworkParams ExponentialLossyParams() {
  NetworkParams p;
  p.latency = LatencyKind::kExponential;
  p.latency_s = 7.5;
  p.loss = 0.3;
  p.jitter_s = 2.0;
  return p;
}

TEST(NetworkModelTest, DecisionsAreIndexPureInAnyOrder) {
  const NetworkParams params = ExponentialLossyParams();
  constexpr uint64_t kMessages = 500;

  NetworkModel forward(params, /*root_seed=*/0xfeed);
  std::vector<NetworkModel::Delivery> expect;
  for (uint64_t i = 0; i < kMessages; ++i) expect.push_back(forward.Decide(i));

  // Shuffled order, with every index also re-decided a second time.
  std::vector<uint64_t> order;
  for (uint64_t i = 0; i < kMessages; ++i) {
    order.push_back(i);
    order.push_back(kMessages - 1 - i);
  }
  std::mt19937_64 shuffle(42);
  std::shuffle(order.begin(), order.end(), shuffle);

  NetworkModel scrambled(params, /*root_seed=*/0xfeed);
  for (const uint64_t i : order) {
    const NetworkModel::Delivery d = scrambled.Decide(i);
    EXPECT_EQ(d.dropped, expect[i].dropped) << "index " << i;
    EXPECT_EQ(d.delay, expect[i].delay) << "index " << i;
  }
  // Twice the decisions, exactly twice the draws: constant per message.
  EXPECT_EQ(scrambled.rng_draws(), 2 * forward.rng_draws());
}

TEST(NetworkModelTest, DropCoinNeverShiftsLatencyDraws) {
  // The latency of message i must not depend on the drop verdicts — its
  // own or any other message's. Same root seed at very different loss
  // rates: identical per-message delays (dropped messages included, whose
  // latency is still drawn) and identical draw totals.
  NetworkParams rarely = ExponentialLossyParams();
  rarely.loss = 0.05;
  NetworkParams often = ExponentialLossyParams();
  often.loss = 0.95;

  NetworkModel a(rarely, 1);
  NetworkModel b(often, 1);
  int dropped_a = 0;
  int dropped_b = 0;
  for (uint64_t i = 0; i < 400; ++i) {
    const auto da = a.Decide(i);
    const auto db = b.Decide(i);
    EXPECT_EQ(da.delay, db.delay) << "index " << i;
    dropped_a += da.dropped ? 1 : 0;
    dropped_b += db.dropped ? 1 : 0;
  }
  EXPECT_LT(dropped_a, 50);
  EXPECT_GT(dropped_b, 350);
  EXPECT_EQ(a.rng_draws(), b.rng_draws());
}

TEST(NetworkModelTest, DifferentRootSeedsDecorrelate) {
  const NetworkParams params = ExponentialLossyParams();
  NetworkModel a(params, 1);
  NetworkModel b(params, 2);
  int identical = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const auto da = a.Decide(i);
    const auto db = b.Decide(i);
    if (da.dropped == db.dropped && da.delay == db.delay) ++identical;
  }
  EXPECT_LT(identical, 10);
}

TEST(NetworkModelTest, FixedLatencyIsExactAndLossless) {
  NetworkParams params;
  params.latency = LatencyKind::kFixed;
  params.latency_s = 3.0;
  NetworkModel model(params, 7);
  for (uint64_t i = 0; i < 100; ++i) {
    const auto d = model.Decide(i);
    EXPECT_FALSE(d.dropped);
    EXPECT_EQ(d.delay, FromSeconds(3.0));
  }
}

TEST(NetworkModelTest, UniformLatencyStaysInRange) {
  NetworkParams params;
  params.latency = LatencyKind::kUniform;
  params.latency_s = 2.0;
  params.latency_hi_s = 5.0;
  NetworkModel model(params, 7);
  double mean = 0.0;
  constexpr int kMessages = 2000;
  for (uint64_t i = 0; i < kMessages; ++i) {
    const auto d = model.Decide(i);
    EXPECT_GE(d.delay, FromSeconds(2.0));
    EXPECT_LE(d.delay, FromSeconds(5.0));
    mean += ToSeconds(d.delay);
  }
  mean /= kMessages;
  EXPECT_NEAR(mean, 3.5, 0.1);
}

TEST(NetworkModelTest, ExponentialLatencyMatchesItsMean) {
  NetworkParams params;
  params.latency = LatencyKind::kExponential;
  params.latency_s = 10.0;
  NetworkModel model(params, 7);
  double mean = 0.0;
  constexpr int kMessages = 4000;
  for (uint64_t i = 0; i < kMessages; ++i) {
    const auto d = model.Decide(i);
    EXPECT_GE(d.delay, 0);
    mean += ToSeconds(d.delay);
  }
  mean /= kMessages;
  EXPECT_NEAR(mean, 10.0, 0.6);
}

TEST(NetworkModelTest, ZeroMeanExponentialDegeneratesToInstant) {
  NetworkParams params;
  params.latency = LatencyKind::kExponential;
  params.latency_s = 0.0;
  NetworkModel model(params, 7);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(model.Decide(i).delay, 0);
}

TEST(NetworkModelTest, JitterWidensFixedLatency) {
  NetworkParams params;
  params.latency = LatencyKind::kFixed;
  params.latency_s = 3.0;
  params.jitter_s = 1.5;
  NetworkModel model(params, 7);
  bool saw_jitter = false;
  for (uint64_t i = 0; i < 500; ++i) {
    const auto d = model.Decide(i);
    EXPECT_GE(d.delay, FromSeconds(3.0));
    EXPECT_LE(d.delay, FromSeconds(4.5));
    if (d.delay != FromSeconds(3.0)) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(NetworkModelTest, BernoulliDropRateIsCalibrated) {
  NetworkParams params;
  params.latency = LatencyKind::kFixed;
  params.latency_s = 1.0;
  params.loss = 0.25;
  NetworkModel model(params, 7);
  int dropped = 0;
  constexpr int kMessages = 4000;
  for (uint64_t i = 0; i < kMessages; ++i) {
    if (model.Decide(i).dropped) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kMessages, 0.25, 0.03);
}

TEST(NetworkModelTest, CatalogsNameEveryModelAndKey) {
  const auto models = NetworkModelCatalog();
  ASSERT_EQ(models.size(), 3u);
  EXPECT_EQ(models[0].name, "fixed");
  EXPECT_EQ(models[1].name, "uniform");
  EXPECT_EQ(models[2].name, "exponential");
  bool saw_loss = false;
  bool saw_stream = false;
  for (const auto& key : AsyncSpecKeyCatalog()) {
    if (key.name == "net.loss") saw_loss = true;
    if (key.name == "seeds.message_stream") saw_stream = true;
  }
  EXPECT_TRUE(saw_loss);
  EXPECT_TRUE(saw_stream);
}

}  // namespace
}  // namespace net
}  // namespace dynagg
